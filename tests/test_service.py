"""Tests for the batch serving layer (:mod:`repro.service`)."""

import pytest

from repro.core.cache import AnalysisCache
from repro.runtime.arrays import store_for_nest
from repro.runtime.interpreter import execute_nest
from repro.service import BatchJob, BatchService, jobs_from_nests
from repro.workloads.paper_examples import example_4_1, example_4_2
from repro.workloads.suite import workload_suite


def _checksum_reference(nest) -> float:
    store = store_for_nest(nest)
    execute_nest(nest, store)
    return sum(float(array.data.sum()) for array in store.values())


class TestJobsFromNests:
    def test_repeat_names_rounds(self):
        nests = [example_4_1(4), example_4_2(4)]
        jobs = jobs_from_nests(nests, repeat=3)
        assert len(jobs) == 6
        assert jobs[0].name.endswith("#1")
        assert jobs[-1].name.endswith("#3")

    def test_single_round_keeps_plain_names(self):
        jobs = jobs_from_nests([example_4_1(4)])
        assert jobs[0].name == example_4_1(4).name


class TestBatchServiceSerial:
    def test_results_match_serial_reference(self):
        nests = [case.nest for case in workload_suite(5)[:4]]
        with BatchService(
            mode="serial", backend="compiled", workers=1, cache=AnalysisCache()
        ) as service:
            report = service.submit(jobs_from_nests(nests))
        assert report.jobs == len(nests)
        for nest, result in zip(nests, report.results):
            assert result.checksum == pytest.approx(_checksum_reference(nest))
            assert result.fallback is None
            assert result.iterations == nest.iteration_count()

    def test_structural_duplicates_dedupe_through_cache(self):
        cache = AnalysisCache()
        nests = [case.nest for case in workload_suite(5)[:3]]
        with BatchService(
            mode="serial", backend="compiled", workers=1, cache=cache
        ) as service:
            report = service.submit(jobs_from_nests(nests, repeat=3))
        assert report.jobs == 9
        assert report.cache_misses == 3  # one analysis per structure
        assert report.cache_hits == 6  # every later round hits
        assert report.hit_rate == pytest.approx(2 / 3)
        hits = [result.cache_hit for result in report.results]
        assert hits[:3] == [False, False, False]
        assert all(hits[3:])
        # Hit rows carry the same analysis outcome as their cold row.
        for cold, warm in zip(report.results[:3], report.results[3:6]):
            assert warm.partitions == cold.partitions
            assert warm.parallel_loops == cold.parallel_loops
            assert warm.checksum == cold.checksum

    def test_throughput_statistics_present(self):
        nests = [example_4_2(4)]
        with BatchService(
            mode="serial", backend="interpreter", workers=1, cache=AnalysisCache()
        ) as service:
            report = service.submit(jobs_from_nests(nests, repeat=2))
        assert report.wall_seconds > 0
        assert report.jobs_per_second > 0
        assert report.iterations_per_second > 0
        assert report.total_iterations == 2 * example_4_2(4).iteration_count()
        text = report.describe()
        assert "jobs/s" in text
        assert "analysis dedupe" in text

    def test_explicit_jobs_with_placement(self):
        job = BatchJob(name="inner", nest=example_4_1(4), placement="inner")
        with BatchService(
            mode="serial", backend="compiled", workers=1, cache=AnalysisCache()
        ) as service:
            report = service.submit([job])
        assert report.results[0].name == "inner"
        assert report.results[0].checksum == pytest.approx(
            _checksum_reference(example_4_1(4))
        )


class TestBatchServiceSessionInjection:
    def test_injected_session_serves_the_batch(self):
        from repro.api import Session, SessionConfig

        with Session(SessionConfig(mode="serial", backend="compiled", workers=1)) as session:
            with BatchService(session=session) as service:
                report = service.submit(jobs_from_nests([example_4_1(4)]))
        assert report.mode == "serial"
        assert report.results[0].checksum == pytest.approx(
            _checksum_reference(example_4_1(4))
        )

    def test_session_conflicts_with_other_options(self):
        from repro.api import Session
        from repro.exceptions import WorkloadError

        with Session() as session:
            with pytest.raises(WorkloadError, match="not both"):
                BatchService(mode="shared", session=session)
            with pytest.raises(WorkloadError, match="not both"):
                BatchService(cache=AnalysisCache(), session=session)

    def test_uncached_session_rejected(self):
        from repro.api import Session
        from repro.exceptions import WorkloadError

        with Session(use_cache=False) as session:
            with pytest.raises(WorkloadError, match="caching session"):
                BatchService(session=session)


class TestBatchServiceShared:
    def test_shared_mode_serves_batch_bit_identically(self):
        nests = [case.nest for case in workload_suite(4)[:3]]
        with BatchService(
            mode="shared", backend="vectorized", workers=2, cache=AnalysisCache()
        ) as service:
            report = service.submit(jobs_from_nests(nests, repeat=2))
        assert report.mode == "shared"
        for nest, result in zip(nests * 2, list(report.results)):
            assert result.checksum == pytest.approx(_checksum_reference(nest))
            assert result.fallback is None

    def test_persistent_across_batches(self):
        nest = example_4_1(4)
        with BatchService(
            mode="shared", backend="compiled", workers=2, cache=AnalysisCache()
        ) as service:
            first = service.submit(jobs_from_nests([nest]))
            second = service.submit(jobs_from_nests([nest]))
        assert first.results[0].checksum == second.results[0].checksum
        assert second.cache_hits == 1  # the analysis survived between batches

    def test_repeated_jobs_reuse_one_program(self):
        # The service must hand the executor the *same* transformed/chunks
        # objects for textually identical jobs, so the worker pool's
        # per-program shipping (schedule segments, registration) is paid once.
        nest = example_4_1(4)
        with BatchService(
            mode="serial", backend="compiled", workers=1, cache=AnalysisCache()
        ) as service:
            service.submit(jobs_from_nests([nest], repeat=3))
            assert len(service._programs) == 1
            (transformed, chunks), = service._programs.values()
            service.submit(jobs_from_nests([nest]))
            assert len(service._programs) == 1
            (again, chunks_again), = service._programs.values()
            assert again is transformed
            assert chunks_again is chunks
