"""Tests for the memoizing analysis cache."""

import pytest

from repro.core.cache import (
    AnalysisCache,
    cached_parallelize,
    default_cache,
    parallelize_many,
)
from repro.core.pipeline import analyze_nest
from repro.loopnest.canonical import rename_nest_indices
from repro.workloads.paper_examples import example_4_1, example_4_2
from repro.workloads.kernels import wavefront_recurrence
from repro.workloads.suite import workload_suite


class TestCacheCorrectness:
    def test_warm_reports_equal_cold_runs_across_suite(self):
        cache = AnalysisCache()
        cases = workload_suite(6)
        cold = [analyze_nest(case.nest) for case in cases]
        parallelize_many([case.nest for case in cases], cache=cache)
        assert cache.stats.misses == len(cases)
        assert cache.stats.hits == 0
        warm = parallelize_many([case.nest for case in cases], cache=cache)
        assert cache.stats.hits == len(cases)
        for case, cold_report, warm_report in zip(cases, cold, warm):
            assert warm_report == cold_report
            assert warm_report.nest is case.nest
            assert warm_report.summary() == cold_report.summary()
            assert warm_report.transform_is_legal()

    def test_structural_hit_rebinds_to_querying_nest(self):
        cache = AnalysisCache()
        nest = example_4_1(6)
        renamed = rename_nest_indices(nest, ["a", "b"]).rename("other-name")
        first = cache.parallelize(nest)
        second = cache.parallelize(renamed)
        assert cache.stats.hits == 1
        assert second.nest is renamed
        assert second.pdm.index_names == ("a", "b")
        assert second.transform == first.transform
        assert second.parallel_levels == first.parallel_levels
        assert second.partition_count == first.partition_count
        # The rebound report is indistinguishable from a cold run.
        assert second == analyze_nest(renamed)

    def test_placement_and_flags_key_separately(self):
        cache = AnalysisCache()
        nest = example_4_1(6)
        outer = cache.parallelize(nest, placement="outer")
        inner = cache.parallelize(nest, placement="inner")
        no_part = cache.parallelize(nest, allow_partitioning=False)
        no_self = cache.parallelize(nest, include_self=False)
        assert cache.stats.misses == 4
        assert cache.stats.hits == 0
        assert len(cache) == 4
        assert outer.parallel_levels != inner.parallel_levels
        assert no_part.partitioning is None

    def test_mutating_a_returned_report_does_not_corrupt_the_cache(self):
        cache = AnalysisCache()
        nest = example_4_2(6)
        first = cache.parallelize(nest)
        first.transform[0][0] = 999
        first.transformed_pdm[0][0] = 999
        first.pdm.matrix[0][0] = 999
        second = cache.parallelize(nest)
        assert second.transform[0][0] != 999
        assert second.transformed_pdm[0][0] != 999
        assert second.pdm.matrix[0][0] != 999
        assert second == analyze_nest(nest)

    def test_mutating_algorithm1_and_steps_does_not_corrupt_the_cache(self):
        # example 4.1 has a rank-deficient PDM, so the report carries an
        # Algorithm1Result whose matrices alias report.transform on cold runs.
        cache = AnalysisCache()
        nest = example_4_1(6)
        first = cache.parallelize(nest)
        first.algorithm1.transform[0][0] += 100
        first.algorithm1.sequential_block[0][0] += 100
        second = cache.parallelize(nest)
        cold = analyze_nest(nest)
        assert second.algorithm1.transform == cold.algorithm1.transform
        assert second.algorithm1.sequential_block == cold.algorithm1.sequential_block

    def test_step_matrices_are_immutable(self):
        # Recorded step matrices are frozen tuples, so shared steps cannot
        # be used to corrupt cache entries.
        report = analyze_nest(example_4_1(6))
        for step in report.steps:
            if step.matrix:
                with pytest.raises(TypeError):
                    step.matrix[0][0] = 999


class TestCachePolicy:
    def test_lru_eviction(self):
        cache = AnalysisCache(maxsize=2)
        nests = [example_4_1(6), example_4_2(6), wavefront_recurrence(6)]
        for nest in nests:
            cache.parallelize(nest)
        assert len(cache) == 2
        assert cache.stats.evictions == 1
        # The oldest entry (example 4.1) was evicted: querying it misses again.
        cache.parallelize(nests[0])
        assert cache.stats.misses == 4
        cache.parallelize(nests[2])  # still resident
        assert cache.stats.hits == 1

    def test_clear_resets_entries_and_stats(self):
        cache = AnalysisCache()
        cache.parallelize(example_4_1(6))
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.lookups == 0

    def test_describe_mentions_hit_rate(self):
        cache = AnalysisCache()
        cache.parallelize(example_4_1(6))
        cache.parallelize(example_4_1(6))
        assert "hit rate" in cache.describe()
        assert cache.stats.hit_rate == pytest.approx(0.5)

    def test_invalid_maxsize_rejected(self):
        with pytest.raises(ValueError):
            AnalysisCache(maxsize=0)


class TestBatchEntryPoint:
    def test_parallelize_many_preserves_order_and_dedups(self):
        cache = AnalysisCache()
        a = example_4_1(6)
        b = example_4_2(6)
        a_clone = rename_nest_indices(example_4_1(6), ["x", "y"])
        reports = parallelize_many([a, b, a_clone], cache=cache)
        assert [r.nest for r in reports] == [a, b, a_clone]
        assert cache.stats.misses == 2
        assert cache.stats.hits == 1
        assert reports[0].partition_count == reports[2].partition_count

    def test_cached_parallelize_uses_explicit_cache(self):
        cache = AnalysisCache()
        report = cached_parallelize(example_4_1(6), cache=cache)
        assert report.partition_count == 2
        assert len(cache) == 1

    def test_default_cache_is_shared(self):
        assert default_cache() is default_cache()
