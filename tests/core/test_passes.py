"""Tests for the pass-based analysis pipeline and the HNF block determinant."""

import pytest

from repro.core.passes import (
    Algorithm1Pass,
    BuildPDMPass,
    DependenceAnalysisPass,
    FullRankPass,
    LegalityPass,
    PartitionPass,
    PassManager,
    PipelineContext,
    block_determinant,
)
from repro.core.pdm import PseudoDistanceMatrix
from repro.core.pipeline import (
    analyze_nest,
    default_pass_manager,
    report_from_context,
)
from repro.exceptions import ShapeError
from repro.intlin.matrix import identity_matrix
from repro.workloads.synthetic import no_dependence_loop, uniform_distance_loop


class TestPassManager:
    def test_default_pipeline_matches_parallelize(self, ex41_small):
        ctx = PipelineContext(nest=ex41_small)
        default_pass_manager().run(ctx)
        report = report_from_context(ctx)
        assert report == analyze_nest(ex41_small)
        assert [s.name for s in report.steps] == ["pdm", "algorithm1", "partitioning"]

    def test_per_pass_timings_recorded(self, ex41_small):
        report = analyze_nest(ex41_small)
        names = [t.name for t in report.pass_timings]
        assert names == [
            "dependence",
            "build-pdm",
            "algorithm1",
            "full-rank",
            "legality",
            "partition",
        ]
        by_name = {t.name: t for t in report.pass_timings}
        # ex 4.1 has a rank-1 PDM: Algorithm 1 fires, the full-rank pass is skipped.
        assert not by_name["algorithm1"].skipped
        assert by_name["full-rank"].skipped
        assert all(t.seconds >= 0.0 for t in report.pass_timings)
        assert report.timing_summary()

    def test_full_rank_skips_algorithm1(self, ex42_small):
        report = analyze_nest(ex42_small)
        by_name = {t.name: t for t in report.pass_timings}
        assert by_name["algorithm1"].skipped
        assert not by_name["full-rank"].skipped

    def test_empty_pdm_short_circuits(self):
        ctx = PipelineContext(nest=no_dependence_loop(4))
        default_pass_manager().run(ctx)
        assert ctx.finished
        assert [s.name for s in ctx.steps] == ["pdm", "independent"]
        by_name = {t.name: t for t in ctx.timings}
        assert by_name["algorithm1"].skipped
        assert by_name["legality"].skipped
        assert by_name["partition"].skipped

    def test_invalid_placement_rejected_at_context_construction(self, ex41_small):
        with pytest.raises(ShapeError):
            PipelineContext(nest=ex41_small, placement="sideways")

    def test_custom_subset_pipeline(self, ex42_small):
        """A configuration without the partition pass reports no partitioning."""
        manager = PassManager(
            (
                DependenceAnalysisPass(),
                BuildPDMPass(),
                Algorithm1Pass(),
                FullRankPass(),
                LegalityPass(),
            ),
            name="no-partitioning",
        )
        ctx = PipelineContext(nest=ex42_small)
        manager.run(ctx)
        assert ctx.partitioning is None
        assert ctx.pdm.is_full_rank

    def test_repr_lists_passes(self):
        assert "build-pdm" in repr(default_pass_manager())


class TestBlockDeterminant:
    def test_echelon_block(self):
        assert block_determinant([[2, 1], [0, 2]], 2) == 4

    def test_non_echelon_full_rank_block(self):
        # |det| = 2; the old leading-entry-product shortcut would claim 1*3 = 3.
        assert block_determinant([[1, 2], [3, 4]], 2) == 2

    def test_non_echelon_unimodular_block(self):
        # |det| = 1; the old shortcut would claim 2*1 = 2 and partition.
        assert block_determinant([[2, 3], [1, 1]], 2) == 1

    def test_rank_deficient_block(self):
        # Rank 1; the old shortcut would claim 1*2 = 2 and then crash in
        # partition_full_rank.
        assert block_determinant([[1, 2], [2, 4]], 2) == 0

    def test_empty_block(self):
        assert block_determinant([], 0) == 1
        assert block_determinant([], 1) == 0

    def test_size_inferred_from_columns(self):
        assert block_determinant([[3]]) == 3
        assert block_determinant([[1, 2], [3, 4]]) == 2


def _run_partition_pass(block, require_full_rank_pdm=False):
    """Drive PartitionPass on a hand-built context with the given 2x2 block."""
    nest = uniform_distance_loop([(1, 0), (0, 1)], 4)
    ctx = PipelineContext(nest=nest)
    ctx.pdm = PseudoDistanceMatrix.from_generators(block, 2, nest.index_names)
    ctx.transform = identity_matrix(2)
    ctx.transformed_pdm = [list(row) for row in block]
    ctx.parallel_levels = ()
    ctx.sequential_levels = (0, 1)
    ctx.sequential_block = [list(row) for row in block]
    PassManager((PartitionPass(require_full_rank_pdm=require_full_rank_pdm),)).run(ctx)
    return ctx


class TestPartitionPassRegression:
    """The partition decision must use the HNF determinant of the block,
    not the product of leading entries (which assumes echelon form)."""

    def test_non_echelon_full_rank_pdm_partitions_correctly(self):
        ctx = _run_partition_pass([[1, 2], [3, 4]])
        assert ctx.extras["block_determinant"] == 2
        assert ctx.partitioning is not None
        assert ctx.partitioning.num_partitions == 2

    def test_non_echelon_determinant_one_block_is_not_partitioned(self):
        ctx = _run_partition_pass([[2, 3], [1, 1]])
        assert ctx.extras["block_determinant"] == 1
        assert ctx.partitioning is None

    def test_rank_deficient_block_is_skipped_without_error(self):
        ctx = _run_partition_pass([[1, 2], [2, 4]])
        assert ctx.extras["block_determinant"] == 0
        assert ctx.partitioning is None

    def test_require_full_rank_pdm_gate(self):
        ctx = _run_partition_pass([[2, 0]], require_full_rank_pdm=True)
        assert ctx.partitioning is None
        assert "block_determinant" not in ctx.extras  # pass never ran

    def test_paper_pipeline_reports_unchanged(self, ex41_small, ex42_small):
        # End-to-end sanity: the HNF determinant yields the paper's numbers.
        assert analyze_nest(ex41_small).partition_count == 2
        assert analyze_nest(ex42_small).partition_count == 4
