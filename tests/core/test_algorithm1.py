"""Tests for Algorithm 1 (Section 3.2): zeroing columns of a non-full-rank PDM."""

import random

import pytest

from repro.core.algorithm1 import transform_non_full_rank
from repro.core.legality import is_legal_unimodular
from repro.core.pdm import PseudoDistanceMatrix
from repro.exceptions import ShapeError
from repro.intlin.echelon import is_echelon_lex_positive
from repro.intlin.hermite import hermite_normal_form
from repro.intlin.lattice import Lattice
from repro.intlin.matrix import is_unimodular, is_zero_vector, mat_mul
from repro.workloads.paper_examples import example_4_1


def _random_hnf(depth, rank, magnitude, rng):
    while True:
        rows = [[rng.randint(-magnitude, magnitude) for _ in range(depth)] for _ in range(rank)]
        hnf = hermite_normal_form(rows).hermite
        if len(hnf) == rank:
            return hnf


class TestExample41:
    def test_zeroes_the_leading_column(self, ex41_small):
        pdm = PseudoDistanceMatrix.from_loop_nest(ex41_small)
        result = transform_non_full_rank(pdm)
        assert result.transformed == [[0, 2]]
        assert result.zero_columns == (0,)
        assert result.sequential_columns == (1,)
        assert result.sequential_block == [[2]]
        assert result.parallel_loop_count == 1
        assert is_unimodular(result.transform)

    def test_inner_placement(self, ex41_small):
        pdm = PseudoDistanceMatrix.from_loop_nest(ex41_small)
        result = transform_non_full_rank(pdm, placement="inner")
        assert result.zero_columns == (1,)
        assert result.transformed == [[2, 0]]
        assert is_legal_unimodular(pdm, result.transform)


class TestGeneralProperties:
    @pytest.mark.parametrize(
        "matrix,depth",
        [
            ([[2, -2]], 2),
            ([[1, 2, 3]], 3),
            ([[2, 4, 6], [0, 3, 1]], 3),
            ([[1, 0, 0], [0, 2, 5]], 3),
            ([[3, 1, 4, 1]], 4),
            ([[2, 0, 1, 3], [0, 5, 2, 1], [0, 0, 3, 2]], 4),
        ],
    )
    def test_structure_and_legality(self, matrix, depth):
        rank = len(matrix)
        result = transform_non_full_rank(matrix, depth=depth)
        # shape: n - rank leading zero columns, trailing block echelon lex positive
        assert result.zero_columns == tuple(range(depth - rank))
        for row in result.transformed:
            for col in result.zero_columns:
                assert row[col] == 0
        assert is_echelon_lex_positive(result.transformed)
        assert is_unimodular(result.transform)
        assert mat_mul(matrix, result.transform) == result.transformed
        assert is_legal_unimodular(matrix, result.transform)

    @pytest.mark.parametrize("placement", ["outer", "inner"])
    def test_lattice_preserved_up_to_transform(self, placement):
        matrix = [[2, 4, 6], [0, 3, 1]]
        result = transform_non_full_rank(matrix, depth=3, placement=placement)
        original = Lattice(matrix, dimension=3)
        image = original.transform(result.transform)
        assert image == Lattice(result.transformed, dimension=3)

    def test_full_rank_input_gives_no_zero_columns(self, ex42_small):
        pdm = PseudoDistanceMatrix.from_loop_nest(ex42_small)
        result = transform_non_full_rank(pdm)
        assert result.zero_columns == ()
        assert result.transformed == pdm.matrix

    def test_empty_pdm_all_columns_zero(self):
        result = transform_non_full_rank([], depth=3)
        assert result.zero_columns == (0, 1, 2)
        assert result.transform == [[1, 0, 0], [0, 1, 0], [0, 0, 1]]

    def test_invalid_placement(self):
        with pytest.raises(ShapeError):
            transform_non_full_rank([[1, 2]], depth=2, placement="middle")

    def test_depth_required_for_empty_matrix(self):
        with pytest.raises(ShapeError):
            transform_non_full_rank([])

    def test_rank_exceeding_depth_rejected(self):
        with pytest.raises(ShapeError):
            transform_non_full_rank([[1, 0], [0, 1], [1, 1]], depth=2)

    def test_randomized_invariants(self):
        rng = random.Random(123)
        for _ in range(30):
            depth = rng.randint(2, 5)
            rank = rng.randint(1, depth)
            matrix = _random_hnf(depth, rank, rng.randint(2, 12), rng)
            for placement in ("outer", "inner"):
                result = transform_non_full_rank(matrix, depth=depth, placement=placement)
                assert is_unimodular(result.transform)
                assert mat_mul(matrix, result.transform) == result.transformed
                assert is_legal_unimodular(matrix, result.transform)
                assert len(result.zero_columns) == depth - rank
                for row in result.transformed:
                    for col in result.zero_columns:
                        assert row[col] == 0

    def test_operation_count_reported(self):
        result = transform_non_full_rank([[6, 10, 15]], depth=3)
        assert result.column_operations > 0
