"""Tests for legality (Theorem 1) and elementary unimodular transformations."""

import pytest

from repro.core.legality import (
    check_legal_unimodular,
    is_legal_unimodular,
    lemma2_lex_positive_combination,
)
from repro.core.pdm import PseudoDistanceMatrix
from repro.core.transforms import (
    compose,
    identity_transform,
    interchange,
    loop_permutation,
    reversal,
    shift_to_position,
    skewing,
)
from repro.exceptions import IllegalTransformationError, NotUnimodularError, ShapeError
from repro.intlin.matrix import is_lex_positive, is_unimodular, vec_mat_mul


class TestElementaryTransforms:
    def test_identity(self):
        assert identity_transform(3) == [[1, 0, 0], [0, 1, 0], [0, 0, 1]]

    def test_skewing_matrix(self):
        t = skewing(2, 0, 1, factor=3)
        assert t == [[1, 3], [0, 1]]
        assert vec_mat_mul([2, 5], t) == [2, 11]
        assert is_unimodular(t)

    def test_skewing_validation(self):
        with pytest.raises(ShapeError):
            skewing(2, 0, 0)
        with pytest.raises(ShapeError):
            skewing(2, 0, 5)

    def test_interchange(self):
        t = interchange(3, 0, 2)
        assert vec_mat_mul([1, 2, 3], t) == [3, 2, 1]
        assert is_unimodular(t)

    def test_reversal(self):
        t = reversal(2, 1)
        assert vec_mat_mul([4, 5], t) == [4, -5]
        assert is_unimodular(t)

    def test_loop_permutation(self):
        t = loop_permutation([2, 0, 1])
        assert vec_mat_mul([10, 20, 30], t) == [30, 10, 20]

    def test_shift_to_position(self):
        # move loop 2 to the outermost position; others keep relative order
        t = shift_to_position(3, 2, 0)
        assert vec_mat_mul([10, 20, 30], t) == [30, 10, 20]
        t = shift_to_position(3, 0, 2)
        assert vec_mat_mul([10, 20, 30], t) == [20, 30, 10]

    def test_compose_order(self):
        first = skewing(2, 0, 1, 1)
        second = interchange(2, 0, 1)
        combined = compose(first, second)
        step_by_step = vec_mat_mul(vec_mat_mul([3, 4], first), second)
        assert vec_mat_mul([3, 4], combined) == step_by_step

    def test_compose_requires_argument(self):
        with pytest.raises(ShapeError):
            compose()


class TestLemma2:
    def test_lex_positive_combination(self):
        hnf = [[2, -2], [0, 3]]
        # coefficients lex positive <=> combination lex positive
        assert lemma2_lex_positive_combination(hnf, [1, 0])
        assert lemma2_lex_positive_combination(hnf, [0, 2])
        assert lemma2_lex_positive_combination(hnf, [1, -5])
        assert not lemma2_lex_positive_combination(hnf, [-1, 2])
        assert not lemma2_lex_positive_combination(hnf, [0, 0])

    def test_lemma2_exhaustive_small(self):
        hnf = [[1, 2], [0, 3]]
        for y0 in range(-3, 4):
            for y1 in range(-3, 4):
                combo_positive = lemma2_lex_positive_combination(hnf, [y0, y1])
                assert combo_positive == is_lex_positive([y0, y1])


class TestTheorem1:
    def test_known_legal_transform_example_41(self, ex41_small):
        pdm = PseudoDistanceMatrix.from_loop_nest(ex41_small)
        assert is_legal_unimodular(pdm, [[1, 1], [1, 0]])

    def test_order_reversal_is_illegal(self, ex41_small):
        pdm = PseudoDistanceMatrix.from_loop_nest(ex41_small)
        # reversing the outer loop maps (2, -2) to (-2, -2): lexicographically negative
        assert not is_legal_unimodular(pdm, reversal(2, 0))

    def test_interchange_illegal_for_wavefront(self):
        pdm = PseudoDistanceMatrix(matrix=[[1, -1]], depth=2)
        # interchanging maps (1,-1) to (-1,1): illegal
        assert not is_legal_unimodular(pdm, interchange(2, 0, 1))

    def test_right_skewing_always_legal(self, ex41_small, ex42_small):
        # Corollary 2: right skewing never changes the leading elements.
        for nest in (ex41_small, ex42_small):
            pdm = PseudoDistanceMatrix.from_loop_nest(nest)
            for factor in (-3, -1, 1, 2, 5):
                assert is_legal_unimodular(pdm, skewing(2, 0, 1, factor))

    def test_non_unimodular_rejected(self, ex41_small):
        pdm = PseudoDistanceMatrix.from_loop_nest(ex41_small)
        assert not is_legal_unimodular(pdm, [[2, 0], [0, 1]])
        with pytest.raises(NotUnimodularError):
            check_legal_unimodular(pdm, [[2, 0], [0, 1]])

    def test_check_raises_on_illegal(self, ex41_small):
        pdm = PseudoDistanceMatrix.from_loop_nest(ex41_small)
        with pytest.raises(IllegalTransformationError):
            check_legal_unimodular(pdm, reversal(2, 0))

    def test_empty_pdm_everything_legal(self):
        pdm = PseudoDistanceMatrix(matrix=[], depth=2)
        assert is_legal_unimodular(pdm, reversal(2, 0))
        assert is_legal_unimodular(pdm, interchange(2, 0, 1))
        check_legal_unimodular(pdm, reversal(2, 0))

    def test_legal_transform_preserves_lex_positivity_of_distances(self, ex42_small):
        # semantic restatement of Theorem 1 checked on concrete lattice points
        pdm = PseudoDistanceMatrix.from_loop_nest(ex42_small)
        transform = skewing(2, 0, 1, 2)
        assert is_legal_unimodular(pdm, transform)
        for coeffs in ([1, 0], [0, 1], [1, 1], [2, -1], [3, 2]):
            distance = vec_mat_mul(coeffs, pdm.matrix)
            if is_lex_positive(distance):
                assert is_lex_positive(vec_mat_mul(distance, transform))

    def test_accepts_raw_matrix_input(self):
        assert is_legal_unimodular([[2, -2]], [[1, 1], [1, 0]])
