"""Tests for the end-to-end parallelization pipeline."""

import pytest

from repro.core.pipeline import analyze_nest
from repro.exceptions import ShapeError
from repro.intlin.matrix import identity_matrix
from repro.workloads.kernels import (
    banded_update,
    constant_partitioning_recurrence,
    strided_scatter,
    wavefront_recurrence,
)
from repro.workloads.paper_examples import example_4_1, example_4_2
from repro.workloads.synthetic import no_dependence_loop, three_deep_variable_loop


class TestPaperExamples:
    def test_example_41_report(self, ex41_report):
        report = ex41_report
        assert report.pdm.matrix == [[2, -2]]
        assert report.transform == [[1, 1], [1, 0]]
        assert report.transformed_pdm == [[0, 2]]
        assert report.parallel_levels == (0,)
        assert report.sequential_levels == (1,)
        assert report.partition_count == 2
        assert report.uses_unimodular_transform
        assert report.uses_partitioning
        assert report.transform_is_legal()
        assert not report.is_fully_sequential

    def test_example_42_report(self, ex42_report):
        report = ex42_report
        assert report.pdm.matrix == [[2, 1], [0, 2]]
        assert not report.uses_unimodular_transform
        assert report.parallel_levels == ()
        assert report.partition_count == 4
        assert report.transform_is_legal()

    def test_example_41_inner_placement(self, ex41_small):
        report = analyze_nest(ex41_small, placement="inner")
        assert report.parallel_levels == (1,)
        assert report.transformed_pdm == [[2, 0]]
        assert report.partition_count == 2
        assert report.transform_is_legal()

    def test_summary_text(self, ex41_report, ex42_report):
        text41 = ex41_report.summary()
        assert "doall" in text41.lower() or "Parallel" in text41
        assert "2 partition" in text41
        text42 = ex42_report.summary()
        assert "4 partition" in text42


class TestOtherWorkloads:
    def test_independent_loop_fully_parallel(self):
        report = analyze_nest(no_dependence_loop(5))
        assert report.pdm.is_empty
        assert report.parallel_levels == (0, 1)
        assert report.partition_count == 1
        assert report.transform == identity_matrix(2)

    def test_wavefront_finds_nothing(self):
        report = analyze_nest(wavefront_recurrence(5))
        assert report.parallel_levels == ()
        assert report.partition_count == 1
        assert report.is_fully_sequential

    def test_constant_partition_kernel(self):
        report = analyze_nest(constant_partitioning_recurrence(6, stride=2))
        assert report.partition_count == 4
        assert report.parallel_levels == ()

    def test_banded_and_strided(self):
        assert analyze_nest(banded_update(6, band=3)).partition_count == 3
        assert analyze_nest(strided_scatter(6, stride=3)).partition_count == 3

    def test_three_deep_nest(self):
        report = analyze_nest(three_deep_variable_loop(3))
        assert report.parallel_loop_count >= 1
        assert report.transform_is_legal()

    def test_disable_partitioning(self, ex42_small):
        report = analyze_nest(ex42_small, allow_partitioning=False)
        assert report.partitioning is None
        assert report.partition_count == 1

    def test_invalid_placement(self, ex41_small):
        with pytest.raises(ShapeError):
            analyze_nest(ex41_small, placement="sideways")

    def test_steps_recorded(self, ex41_report):
        names = [step.name for step in ex41_report.steps]
        assert "pdm" in names
        assert "algorithm1" in names
        assert "partitioning" in names
        assert all(step.describe() for step in ex41_report.steps)

    def test_new_index_names(self, ex41_report):
        assert ex41_report.new_index_names == ("j1", "j2")
