"""Tests for the pseudo distance matrix (Section 2.3)."""

import pytest

from repro.core.pdm import PseudoDistanceMatrix
from repro.dependence.graph import realized_distances
from repro.exceptions import ShapeError
from repro.loopnest.builder import loop_nest
from repro.workloads.kernels import (
    banded_update,
    constant_partitioning_recurrence,
    strided_scatter,
    wavefront_recurrence,
)
from repro.workloads.paper_examples import example_4_1, example_4_2
from repro.workloads.synthetic import no_dependence_loop, variable_distance_loop


class TestConstruction:
    def test_example_41_pdm(self, ex41_small):
        pdm = PseudoDistanceMatrix.from_loop_nest(ex41_small)
        assert pdm.matrix == [[2, -2]]
        assert pdm.rank == 1
        assert not pdm.is_full_rank
        assert pdm.determinant() == 2
        assert pdm.zero_columns() == []

    def test_example_42_pdm(self, ex42_small):
        pdm = PseudoDistanceMatrix.from_loop_nest(ex42_small)
        assert pdm.matrix == [[2, 1], [0, 2]]
        assert pdm.is_full_rank
        assert pdm.determinant() == 4
        assert pdm.pivots() == [2, 2]

    def test_wavefront_pdm(self):
        pdm = PseudoDistanceMatrix.from_loop_nest(wavefront_recurrence(5))
        assert pdm.matrix == [[1, 0], [0, 1]]
        assert pdm.determinant() == 1

    def test_constant_partition_pdm(self):
        pdm = PseudoDistanceMatrix.from_loop_nest(constant_partitioning_recurrence(6, stride=2))
        assert pdm.matrix == [[2, 0], [0, 2]]
        assert pdm.determinant() == 4

    def test_independent_loop_pdm_empty(self):
        pdm = PseudoDistanceMatrix.from_loop_nest(no_dependence_loop(4))
        assert pdm.is_empty
        assert pdm.zero_columns() == [0, 1]
        assert pdm.determinant() == 1

    def test_banded_and_strided_kernels(self):
        assert PseudoDistanceMatrix.from_loop_nest(banded_update(6, band=3)).determinant() == 3
        assert PseudoDistanceMatrix.from_loop_nest(strided_scatter(6, stride=3)).determinant() == 3

    def test_variable_distance_scale(self):
        for scale in (2, 3, 4):
            pdm = PseudoDistanceMatrix.from_loop_nest(variable_distance_loop(scale=scale, n=5))
            assert pdm.matrix == [[scale, -scale]]

    def test_from_generators(self):
        pdm = PseudoDistanceMatrix.from_generators([[2, 4], [0, 0], [4, 8]], depth=2)
        assert pdm.matrix == [[2, 4]]

    def test_shape_validation(self):
        with pytest.raises(ShapeError):
            PseudoDistanceMatrix(matrix=[[1, 2, 3]], depth=2)
        with pytest.raises(ShapeError):
            PseudoDistanceMatrix(matrix=[[1, 2]], depth=2, index_names=("i1",))

    def test_zero_column_detection(self):
        # the dependence distance is always (2, 0): the inner loop carries nothing
        nest = (
            loop_nest("inner-parallel")
            .loop("i1", 0, 6)
            .loop("i2", 0, 6)
            .statement("A[i1, i2] = A[i1 - 2, i2] + 1.0")
            .build()
        )
        pdm = PseudoDistanceMatrix.from_loop_nest(nest)
        assert pdm.matrix == [[2, 0]]
        assert pdm.zero_columns() == [1]

    def test_collapsed_write_creates_inner_output_dependence(self):
        # A[i1] is rewritten for every i2, so the inner loop is NOT dependence
        # free: the PDM must contain a generator along i2.
        nest = (
            loop_nest("collapsed-write")
            .loop("i1", 0, 6)
            .loop("i2", 0, 6)
            .statement("A[i1] = A[i1 - 2] + 1.0")
            .build()
        )
        pdm = PseudoDistanceMatrix.from_loop_nest(nest)
        assert pdm.zero_columns() == []
        assert pdm.contains_distance([0, 1])


class TestSoundness:
    """The defining property: every realized distance lies in the PDM lattice."""

    @pytest.mark.parametrize("factory", [example_4_1, example_4_2])
    def test_paper_examples(self, factory):
        nest = factory(6)
        pdm = PseudoDistanceMatrix.from_loop_nest(nest)
        for distance in realized_distances(nest):
            assert pdm.contains_distance(list(distance))

    def test_kernels(self, kernel_nests):
        for nest in kernel_nests:
            pdm = PseudoDistanceMatrix.from_loop_nest(nest)
            for distance in realized_distances(nest):
                assert pdm.contains_distance(list(distance)), (nest.name, distance)

    def test_indirect_distances_also_contained(self, ex42_small):
        pdm = PseudoDistanceMatrix.from_loop_nest(ex42_small)
        realized = list(realized_distances(ex42_small))
        # sums of realized distances (indirect dependences) stay inside the lattice
        for a in realized[:10]:
            for b in realized[:10]:
                combined = [x + y for x, y in zip(a, b)]
                assert pdm.contains_distance(combined)


class TestOperations:
    def test_transformed_canonical(self, ex41_small):
        pdm = PseudoDistanceMatrix.from_loop_nest(ex41_small)
        transformed = pdm.transformed([[1, 1], [1, 0]])
        assert transformed.matrix == [[0, 2]]
        raw = pdm.raw_product([[1, 1], [1, 0]])
        assert raw == [[0, 2]]

    def test_transformed_requires_matching_rows(self, ex41_small):
        pdm = PseudoDistanceMatrix.from_loop_nest(ex41_small)
        with pytest.raises(ShapeError):
            pdm.transformed([[1, 0, 0], [0, 1, 0], [0, 0, 1]])

    def test_empty_pdm_transform(self):
        pdm = PseudoDistanceMatrix(matrix=[], depth=2)
        transformed = pdm.transformed([[1, 1], [0, 1]])
        assert transformed.is_empty

    def test_describe(self, ex41_small, independent_small):
        assert "rank 1" in PseudoDistanceMatrix.from_loop_nest(ex41_small).describe()
        assert "no loop-carried" in PseudoDistanceMatrix.from_loop_nest(independent_small).describe()
