"""The durable disk tier: versioned envelopes, atomicity, cache wiring."""

import os
import pickle

from repro.core.cache import AnalysisCache
from repro.core.diskcache import DiskCache, default_spec_version
from repro.core.pipeline import ParallelizationReport
from repro.plan import ExecutionPlan
from repro.workloads.paper_examples import example_4_1, example_4_2


class TestDiskCache:
    def test_roundtrip_and_miss(self, tmp_path):
        cache = DiskCache(tmp_path)
        assert cache.get("missing") is None
        cache.put("key", {"answer": 42})
        assert cache.get("key") == {"answer": 42}
        assert len(cache) == 1
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_namespaces_are_disjoint(self, tmp_path):
        plans = DiskCache(tmp_path, namespace="plans")
        analysis = DiskCache(tmp_path, namespace="analysis")
        plans.put("k", "plan-value")
        assert analysis.get("k") is None
        assert plans.get("k") == "plan-value"

    def test_version_skew_is_a_miss_and_entry_is_dropped(self, tmp_path):
        old = DiskCache(tmp_path, spec_version="build-A")
        old.put("k", [1, 2, 3])
        new = DiskCache(tmp_path, spec_version="build-B")
        assert new.get("k") is None
        assert new.stats.rejected == 1
        # The stale entry is deleted, not left to be rejected forever.
        assert len(new) == 0

    def test_corrupt_entry_is_a_miss_and_dropped(self, tmp_path):
        cache = DiskCache(tmp_path)
        cache.put("k", "value")
        path = cache._path_for("k")
        with open(path, "wb") as handle:
            handle.write(b"\x80\x04 truncated garbage")
        assert cache.get("k") is None
        assert cache.stats.rejected == 1
        assert not os.path.exists(path)

    def test_non_dict_envelope_rejected(self, tmp_path):
        cache = DiskCache(tmp_path)
        os.makedirs(cache.directory, exist_ok=True)
        with open(cache._path_for("k"), "wb") as handle:
            pickle.dump(["not", "an", "envelope"], handle)
        assert cache.get("k") is None
        assert cache.stats.rejected == 1

    def test_unpicklable_value_is_best_effort_no_write(self, tmp_path):
        cache = DiskCache(tmp_path)
        cache.put("k", lambda: None)  # lambdas don't pickle
        assert cache.get("k") is None
        assert cache.stats.writes == 0
        # No stray temp files either: the atomic publish cleaned up.
        leftovers = [
            name for name in os.listdir(cache.directory)
            if name.endswith(".tmp")
        ] if os.path.isdir(cache.directory) else []
        assert leftovers == []

    def test_clear_and_describe(self, tmp_path):
        cache = DiskCache(tmp_path)
        cache.put("a", 1)
        cache.put("b", 2)
        assert len(cache) == 2
        cache.clear()
        assert len(cache) == 0
        assert "disk cache" in cache.describe()

    def test_default_spec_version_tracks_plan_spec(self):
        assert f"plan{ExecutionPlan.SPEC_VERSION}" in default_spec_version()


class TestAnalysisCacheDiskTier:
    def test_warm_restart_skips_analysis(self, tmp_path):
        nest = example_4_1(8)
        first = AnalysisCache(disk=DiskCache(tmp_path))
        report, hit = first.analyze(nest)
        assert not hit
        assert first.disk.stats.writes == 1
        # A "restarted process": fresh memory cache, same directory.
        second = AnalysisCache(disk=DiskCache(tmp_path))
        restored, hit = second.analyze(nest)
        assert hit
        assert isinstance(restored, ParallelizationReport)
        assert restored == report
        assert second.stats.misses == 0
        # The disk hit also primed the memory tier: a third lookup never
        # touches the disk again.
        reads_before = second.disk.stats.hits
        _, hit = second.analyze(nest)
        assert hit
        assert second.disk.stats.hits == reads_before

    def test_disk_key_separates_knobs(self, tmp_path):
        nest = example_4_1(8)
        outer = AnalysisCache.disk_key_for(nest, placement="outer")
        inner = AnalysisCache.disk_key_for(nest, placement="inner")
        assert outer != inner
        assert AnalysisCache.disk_key_for(nest) != AnalysisCache.disk_key_for(
            example_4_2(8)
        )

    def test_memory_only_cache_unaffected(self):
        cache = AnalysisCache()
        assert cache.disk is None
        report, hit = cache.analyze(example_4_1(8))
        assert not hit
        _, hit = cache.analyze(example_4_1(8))
        assert hit

    def test_stale_disk_entry_degrades_to_cold_analysis(self, tmp_path):
        nest = example_4_1(8)
        # Poison the exact disk slot with a stale-version entry.
        stale = DiskCache(tmp_path, spec_version="ancient")
        stale.put(AnalysisCache.disk_key_for(nest), "garbage")
        cache = AnalysisCache(disk=DiskCache(tmp_path))
        report, hit = cache.analyze(nest)
        assert not hit
        assert report.parallel_levels
