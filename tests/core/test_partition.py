"""Tests for the partitioning transformation (Section 3.3, Theorem 2)."""

import itertools

import pytest

from repro.core.partition import partition_full_rank
from repro.core.pdm import PseudoDistanceMatrix
from repro.dependence.graph import enumerate_dependence_edges
from repro.exceptions import ShapeError, SingularMatrixError
from repro.workloads.kernels import constant_partitioning_recurrence
from repro.workloads.paper_examples import example_4_2


class TestConstruction:
    def test_example_42(self, ex42_small):
        pdm = PseudoDistanceMatrix.from_loop_nest(ex42_small)
        result = partition_full_rank(pdm)
        assert result.num_partitions == 4
        assert result.strides == (2, 2)
        assert result.levels == (0, 1)
        assert len(list(result.partition_labels())) == 4

    def test_partial_levels(self):
        # generators [0, 2]: partition only the second level
        result = partition_full_rank([[0, 2]], levels=[1], depth=2)
        assert result.num_partitions == 2
        assert result.levels == (1,)

    def test_requires_full_rank_block(self):
        with pytest.raises(SingularMatrixError):
            partition_full_rank([[2, -2]], levels=[0, 1], depth=2)

    def test_level_out_of_range(self):
        with pytest.raises(ShapeError):
            partition_full_rank([[2]], levels=[3], depth=2)

    def test_depth_required_for_empty(self):
        with pytest.raises(ShapeError):
            partition_full_rank([])

    def test_constant_partition_kernel(self):
        pdm = PseudoDistanceMatrix.from_loop_nest(constant_partitioning_recurrence(6, stride=3))
        result = partition_full_rank(pdm)
        assert result.num_partitions == 9
        assert result.strides == (3, 3)


class TestLabels:
    def test_labels_cover_det_classes(self, ex42_small):
        pdm = PseudoDistanceMatrix.from_loop_nest(ex42_small)
        result = partition_full_rank(pdm)
        labels = {
            result.label_of((x, y)) for x in range(-6, 7) for y in range(-6, 7)
        }
        assert labels == set(result.partition_labels())

    def test_same_partition_iff_difference_in_lattice(self, ex42_small):
        pdm = PseudoDistanceMatrix.from_loop_nest(ex42_small)
        result = partition_full_rank(pdm)
        points = list(itertools.product(range(-3, 4), repeat=2))
        for a in points[:15]:
            for b in points[:15]:
                diff = [b[0] - a[0], b[1] - a[1]]
                assert result.same_partition(a, b) == pdm.lattice.contains(diff)

    def test_label_vector_length_checked(self, ex42_small):
        pdm = PseudoDistanceMatrix.from_loop_nest(ex42_small)
        result = partition_full_rank(pdm)
        with pytest.raises(ShapeError):
            result.label_of((1, 2, 3))

    def test_describe(self, ex42_small):
        pdm = PseudoDistanceMatrix.from_loop_nest(ex42_small)
        assert "4 independent partitions" in partition_full_rank(pdm).describe()


class TestTheorem2Legality:
    """Dynamic check of Theorem 2: dependent iterations never cross partitions."""

    @pytest.mark.parametrize(
        "nest_factory",
        [
            lambda: example_4_2(6),
            lambda: constant_partitioning_recurrence(7, stride=2),
        ],
    )
    def test_no_cross_partition_dependence(self, nest_factory):
        nest = nest_factory()
        pdm = PseudoDistanceMatrix.from_loop_nest(nest)
        result = partition_full_rank(pdm)
        for edge in enumerate_dependence_edges(nest):
            assert result.label_of(edge.source) == result.label_of(edge.sink)

    def test_partitions_are_nonempty_for_large_enough_space(self):
        nest = example_4_2(6)
        pdm = PseudoDistanceMatrix.from_loop_nest(nest)
        result = partition_full_rank(pdm)
        counts = {label: 0 for label in result.partition_labels()}
        for iteration in nest.iterations():
            counts[result.label_of(iteration)] += 1
        assert all(count > 0 for count in counts.values())
        total = sum(counts.values())
        assert total == nest.iteration_count()
        # partitions are roughly balanced (within a factor of 2)
        assert max(counts.values()) <= 2 * min(counts.values())
