"""The async serving gateway: admission, backpressure, drain, parity.

The acceptance contracts pinned here:

* **bit-identical results** — a job served through the gateway produces
  exactly the store (and checksum) ``Session.run`` produces for the same
  source, because only the grouping/scheduling of chunks differs;
* **bounded-queue backpressure** — at the admission bound, ``wait=False``
  submissions are rejected with :class:`GatewayOverloaded` carrying queue
  stats, ``wait=True`` submissions park and complete later, and neither
  path deadlocks (every await below runs under a timeout);
* **clean drain** — ``aclose`` (and the async context manager) finishes
  every admitted job before stopping the workers, and the gateway rejects
  new work afterwards.

No pytest-asyncio in the environment: each test drives its own event loop
through ``asyncio.run``.
"""

import asyncio

import numpy as np
import pytest

from repro.api import Session
from repro.exceptions import ExecutionError, GatewayOverloaded, WorkloadError
from repro.gateway import Gateway, GatewayConfig, GatewayStats, serve
from repro.workloads.paper_examples import example_4_1, example_4_2
from repro.workloads.synthetic import variable_distance_loop

TIMEOUT = 30.0


def run_async(coro):
    """Drive one coroutine with a global deadline (deadlock insurance)."""

    async def _bounded():
        return await asyncio.wait_for(coro, timeout=TIMEOUT)

    return asyncio.run(_bounded())


# --------------------------------------------------------------------------- #
# configuration
# --------------------------------------------------------------------------- #
class TestGatewayConfig:
    def test_defaults(self):
        config = GatewayConfig()
        assert config.max_pending >= 1
        assert config.queue_depth >= 1

    @pytest.mark.parametrize(
        "field", ["max_pending", "queue_depth", "analysis_workers", "exec_workers"]
    )
    def test_rejects_non_positive(self, field):
        with pytest.raises(WorkloadError):
            GatewayConfig(**{field: 0})

    def test_keyword_overrides(self):
        with Session() as session:
            gateway = Gateway(session, max_pending=3)
            assert gateway.config.max_pending == 3

    def test_config_plus_overrides(self):
        with Session() as session:
            gateway = Gateway(
                session, config=GatewayConfig(max_pending=5), exec_workers=2
            )
            assert (gateway.config.max_pending, gateway.config.exec_workers) == (5, 2)


# --------------------------------------------------------------------------- #
# result parity
# --------------------------------------------------------------------------- #
class TestResultParity:
    @pytest.mark.parametrize(
        "make_nest", [lambda: example_4_1(8), lambda: variable_distance_loop(8)]
    )
    def test_bit_identical_to_session_run(self, make_nest):
        nest = make_nest()
        with Session(backend="compiled") as session:
            expected = session.run(nest)

            async def main():
                async with Gateway(session, exec_workers=3) as gateway:
                    return await gateway.submit(nest)

            actual = run_async(main())
        assert actual.checksum == expected.checksum
        for name in expected.store.keys():
            np.testing.assert_array_equal(
                actual.store[name].data, expected.store[name].data
            )

    def test_repeated_submissions_stay_identical_as_telemetry_warms(self):
        nest = example_4_1(8)
        with Session(backend="compiled") as session:
            expected = session.run(nest).checksum

            async def main():
                async with Gateway(session, exec_workers=2) as gateway:
                    return await gateway.map([nest], repeat=6)

            results = run_async(main())
        assert [result.checksum for result in results] == [expected] * 6

    def test_map_preserves_input_order(self):
        nests = [example_4_1(8), example_4_2(8), variable_distance_loop(8)]
        with Session(backend="compiled") as session:
            expected = [session.run(nest).checksum for nest in nests]

            async def main():
                async with Gateway(session) as gateway:
                    return await gateway.map(nests)

            results = run_async(main())
        assert [result.checksum for result in results] == expected

    def test_results_report_gateway_mode(self):
        with Session(backend="compiled") as session:

            async def main():
                async with Gateway(session, exec_workers=2) as gateway:
                    return await gateway.submit(example_4_1(8))

            result = run_async(main())
        assert result.mode == "gateway"
        assert result.workers == 2
        assert result.num_chunks == len(result.execution.chunk_sizes)

    def test_gateway_feeds_session_telemetry(self):
        with Session(backend="compiled") as session:

            async def main():
                async with Gateway(session) as gateway:
                    await gateway.submit(example_4_1(8))

            run_async(main())
            assert session.telemetry.snapshot()["observations"] > 0
            assert session.stats().telemetry_observations > 0


# --------------------------------------------------------------------------- #
# backpressure
# --------------------------------------------------------------------------- #
class _Gate:
    """Blocks gateway executions until released (deterministic overload)."""

    def __init__(self):
        import threading

        self.release = threading.Event()

    def wrap(self, gateway):
        original = gateway._execute_group

        def slow(job, group):
            self.release.wait(TIMEOUT)
            return original(job, group)

        gateway._execute_group = slow


class TestBackpressure:
    def test_overload_rejects_with_stats(self):
        gate = _Gate()
        nest = example_4_1(8)
        with Session(backend="compiled") as session:

            async def main():
                async with Gateway(
                    session, max_pending=2, exec_workers=2
                ) as gateway:
                    gate.wrap(gateway)
                    first = asyncio.ensure_future(gateway.submit(nest))
                    second = asyncio.ensure_future(gateway.submit(nest))
                    # Let both jobs through admission before overloading.
                    while gateway.stats().pending < 2:
                        await asyncio.sleep(0.01)
                    with pytest.raises(GatewayOverloaded) as rejection:
                        await gateway.submit(nest, wait=False)
                    gate.release.set()
                    await asyncio.gather(first, second)
                    return rejection.value

            rejected = run_async(main())
        stats = rejected.stats
        assert isinstance(stats, GatewayStats)
        assert stats.pending == 2
        assert stats.max_pending == 2
        assert stats.rejected == 1
        assert "pending" in str(rejected)

    def test_waiting_submission_completes_after_capacity_frees(self):
        gate = _Gate()
        nest = example_4_1(8)
        with Session(backend="compiled") as session:
            expected = session.run(nest).checksum

            async def main():
                async with Gateway(
                    session, max_pending=1, exec_workers=2
                ) as gateway:
                    gate.wrap(gateway)
                    first = asyncio.ensure_future(gateway.submit(nest))
                    while gateway.stats().pending < 1:
                        await asyncio.sleep(0.01)
                    # Parks at the admission bound...
                    waiter = asyncio.ensure_future(gateway.submit(nest))
                    await asyncio.sleep(0.05)
                    assert not waiter.done()
                    # ...and runs once the first job finishes.
                    gate.release.set()
                    return await asyncio.gather(first, waiter)

            results = run_async(main())
        assert [result.checksum for result in results] == [expected] * 2

    def test_stats_counters_track_lifecycle(self):
        nest = example_4_1(8)
        with Session(backend="compiled") as session:

            async def main():
                async with Gateway(session) as gateway:
                    await gateway.map([nest], repeat=3)
                    return gateway.stats()

            stats = run_async(main())
        assert stats.submitted == 3
        assert stats.completed == 3
        assert stats.failed == 0
        assert stats.pending == 0
        assert stats.to_dict()["completed"] == 3


# --------------------------------------------------------------------------- #
# hot traffic: coalescing and the response cache
# --------------------------------------------------------------------------- #
class _CountingExec:
    """Counts (and optionally blocks) gateway group executions."""

    def __init__(self, gateway, release=None):
        self.calls = 0
        self._original = gateway._execute_group
        self._release = release

        def counting(job, group):
            self.calls += 1
            if self._release is not None:
                self._release.wait(TIMEOUT)
            return self._original(job, group)

        gateway._execute_group = counting


class TestHotTraffic:
    def test_repeat_jobs_served_from_cache_without_reexecution(self):
        nest = example_4_1(8)
        with Session(backend="compiled") as session:
            expected = session.run(nest).checksum

            async def main():
                async with Gateway(session, exec_workers=2) as gateway:
                    counter = _CountingExec(gateway)
                    first = await gateway.submit(nest)
                    executions = counter.calls
                    second = await gateway.submit(nest)
                    return first, second, executions, counter.calls, gateway.stats()

            first, second, cold_calls, total_calls, stats = run_async(main())
        assert first.checksum == second.checksum == expected
        assert cold_calls > 0
        assert total_calls == cold_calls  # the repeat never executed
        assert stats.result_hits == 1
        assert stats.completed == 2

    def test_cached_stores_are_private_copies(self):
        nest = example_4_1(8)
        with Session(backend="compiled") as session:

            async def main():
                async with Gateway(session) as gateway:
                    first = await gateway.submit(nest)
                    # Mutating a served response must not leak into later
                    # responses for the same job.
                    name = next(iter(first.store.keys()))
                    first.store[name].data[...] = -1.0
                    second = await gateway.submit(nest)
                    return second

            second = run_async(main())
            expected = session.run(nest)
        assert second.checksum == expected.checksum
        for name in expected.store.keys():
            np.testing.assert_array_equal(
                second.store[name].data, expected.store[name].data
            )

    def test_concurrent_identical_jobs_coalesce_onto_one_execution(self):
        import threading

        nest = example_4_1(8)
        with Session(backend="compiled") as session:
            expected = session.run(nest).checksum

            async def main():
                async with Gateway(
                    session, exec_workers=2, result_cache=0
                ) as gateway:
                    release = threading.Event()
                    counter = _CountingExec(gateway, release=release)
                    jobs = [
                        asyncio.ensure_future(gateway.submit(nest))
                        for _ in range(4)
                    ]
                    while gateway.stats().pending < 4:
                        await asyncio.sleep(0.01)
                    release.set()
                    results = await asyncio.gather(*jobs)
                    return results, counter.calls, gateway.stats()

            results, calls, stats = run_async(main())
        assert [result.checksum for result in results] == [expected] * 4
        assert stats.coalesced == 3
        assert calls == 2  # one job, two groups: the other three rode along

    def test_disabled_cache_and_coalescing_reexecute_every_job(self):
        nest = example_4_1(8)
        with Session(backend="compiled") as session:

            async def main():
                async with Gateway(
                    session, exec_workers=2, coalesce=False, result_cache=0
                ) as gateway:
                    counter = _CountingExec(gateway)
                    await gateway.submit(nest)
                    cold_calls = counter.calls
                    await gateway.submit(nest)
                    return cold_calls, counter.calls, gateway.stats()

            cold_calls, total_calls, stats = run_async(main())
        assert total_calls == 2 * cold_calls
        assert stats.result_hits == 0
        assert stats.coalesced == 0

    def test_lru_bound_evicts_oldest_response(self):
        first, second = example_4_1(8), example_4_2(8)
        with Session(backend="compiled") as session:

            async def main():
                async with Gateway(session, result_cache=1) as gateway:
                    counter = _CountingExec(gateway)
                    await gateway.submit(first)
                    await gateway.submit(second)   # evicts `first`
                    calls_before = counter.calls
                    await gateway.submit(first)    # re-executes
                    return counter.calls > calls_before, gateway.stats()

            reexecuted, stats = run_async(main())
        assert reexecuted
        assert stats.result_hits == 0

    def test_failed_leader_fails_coalesced_followers(self):
        import threading

        nest = example_4_1(8)
        with Session(backend="compiled") as session:

            async def main():
                async with Gateway(
                    session, exec_workers=2, result_cache=0
                ) as gateway:
                    release = threading.Event()
                    original = gateway._execute_group

                    def exploding(job, group):
                        release.wait(TIMEOUT)
                        raise RuntimeError("injected leader failure")

                    gateway._execute_group = exploding
                    leader = asyncio.ensure_future(gateway.submit(nest))
                    while gateway.stats().pending < 1:
                        await asyncio.sleep(0.01)
                    follower = asyncio.ensure_future(gateway.submit(nest))
                    while gateway.stats().coalesced < 1:
                        await asyncio.sleep(0.01)
                    release.set()
                    outcomes = await asyncio.gather(
                        leader, follower, return_exceptions=True
                    )
                    gateway._execute_group = original
                    return outcomes, gateway.stats()

            outcomes, stats = run_async(main())
        assert all(isinstance(outcome, RuntimeError) for outcome in outcomes)
        assert stats.failed == 2
        assert stats.pending == 0

    def test_leader_failure_with_full_cache_eviction_racing_follower(self):
        # The nasty interleaving: a follower coalesces onto a leader that
        # will fail, while an unrelated job completes and evicts the only
        # cached response (result_cache=1).  The eviction must not detach
        # or complete the follower, the failure must reach both waiters,
        # and the coalescing slot must not stay poisoned afterwards.
        import threading

        cached_nest = example_4_2(8)
        failing_nest = example_4_1(8)
        evictor_nest = variable_distance_loop(2, 10)
        with Session(backend="compiled") as session:
            expected = session.run(failing_nest).checksum

            async def main():
                async with Gateway(
                    session, exec_workers=2, result_cache=1
                ) as gateway:
                    await gateway.submit(cached_nest)  # fills the one slot
                    blocked = threading.Event()
                    release = threading.Event()
                    original = gateway._execute_group
                    armed = [True]

                    def exploding(job, group):
                        # Only the first group call blocks-then-raises, so
                        # exactly one exec worker is pinned and the evictor
                        # job still has a worker to run on.
                        if armed[0]:
                            armed[0] = False
                            blocked.set()
                            release.wait(TIMEOUT)
                            raise RuntimeError("injected leader failure")
                        return original(job, group)

                    gateway._execute_group = exploding
                    leader = asyncio.ensure_future(gateway.submit(failing_nest))
                    while not blocked.is_set():
                        await asyncio.sleep(0.01)
                    follower = asyncio.ensure_future(gateway.submit(failing_nest))
                    while gateway.stats().coalesced < 1:
                        await asyncio.sleep(0.01)
                    # While the leader is mid-execution: a third job
                    # completes and evicts `cached_nest` from the full
                    # single-slot cache — the eviction races the attached
                    # follower.
                    evictor = await gateway.submit(evictor_nest)
                    release.set()
                    outcomes = await asyncio.gather(
                        leader, follower, return_exceptions=True
                    )
                    gateway._execute_group = original
                    # The coalescing slot is not poisoned: a fresh
                    # submission of the failed program executes and serves.
                    retry = await gateway.submit(failing_nest)
                    return evictor, outcomes, retry, gateway.stats()

            evictor, outcomes, retry, stats = run_async(main())
        assert evictor.checksum == pytest.approx(evictor.checksum)
        assert all(isinstance(outcome, RuntimeError) for outcome in outcomes)
        assert retry.checksum == expected
        assert stats.failed == 2
        assert stats.pending == 0
        assert stats.completed >= 3  # cached, evictor, retry


# --------------------------------------------------------------------------- #
# the retry-after hint
# --------------------------------------------------------------------------- #
class TestRetryAfterHint:
    def test_cold_gateway_hints_zero(self):
        gate = _Gate()
        nest = example_4_1(8)
        with Session(backend="compiled") as session:

            async def main():
                async with Gateway(
                    session, max_pending=1, exec_workers=2
                ) as gateway:
                    # Nothing has completed yet: no service-time estimate.
                    assert gateway.retry_after_hint() == 0.0
                    gate.wrap(gateway)
                    job = asyncio.ensure_future(gateway.submit(nest))
                    while gateway.stats().pending < 1:
                        await asyncio.sleep(0.01)
                    with pytest.raises(GatewayOverloaded) as rejection:
                        await gateway.submit(nest, wait=False)
                    gate.release.set()
                    await job
                    return rejection.value

            rejected = run_async(main())
        assert rejected.retry_after_hint == 0.0

    def test_warm_gateway_hints_from_queue_depth_and_service_ewma(self):
        gate = _Gate()
        nest = example_4_1(8)
        with Session(backend="compiled") as session:

            async def main():
                async with Gateway(
                    session, max_pending=2, exec_workers=2, result_cache=0
                ) as gateway:
                    # Warm the service-time EWMA with real completions.
                    await gateway.map([nest], repeat=3)
                    assert gateway.retry_after_hint() == 0.0  # queue empty
                    gate.wrap(gateway)
                    first = asyncio.ensure_future(gateway.submit(nest))
                    second = asyncio.ensure_future(gateway.submit(nest))
                    while gateway.stats().pending < 2:
                        await asyncio.sleep(0.01)
                    with pytest.raises(GatewayOverloaded) as rejection:
                        await gateway.submit(nest, wait=False)
                    # Little's law shape: pending jobs times the EWMA
                    # service time, divided over the exec workers.
                    expected = (
                        gateway.stats().pending
                        * gateway._service_ewma
                        / gateway.config.exec_workers
                    )
                    live_hint = gateway.retry_after_hint()
                    gate.release.set()
                    await asyncio.gather(first, second)
                    return rejection.value, live_hint, expected

            rejected, live_hint, expected = run_async(main())
        assert rejected.retry_after_hint > 0.0
        assert rejected.retry_after_hint == pytest.approx(expected)
        assert live_hint == pytest.approx(expected)

    def test_hint_carried_by_the_exception_constructor(self):
        error = GatewayOverloaded("full", retry_after_hint=1.5)
        assert error.retry_after_hint == 1.5
        assert GatewayOverloaded("full").retry_after_hint == 0.0


# --------------------------------------------------------------------------- #
# failures and shutdown
# --------------------------------------------------------------------------- #
class TestFailuresAndDrain:
    def test_analysis_failure_propagates_and_frees_capacity(self):
        with Session(backend="compiled") as session:

            async def main():
                async with Gateway(session, max_pending=1) as gateway:
                    with pytest.raises(Exception):
                        await gateway.submit("loop i1 = broken")
                    stats_after = gateway.stats()
                    # Capacity freed: the next job is admitted and served.
                    result = await gateway.submit(example_4_1(8))
                    return stats_after, result

            stats_after, result = run_async(main())
        assert stats_after.failed == 1
        assert stats_after.pending == 0
        assert result.checksum == pytest.approx(result.checksum)

    def test_execution_failure_rejects_job_but_gateway_survives(self):
        nest = example_4_1(8)
        with Session(backend="compiled") as session:
            expected = session.run(nest).checksum

            async def main():
                async with Gateway(session, exec_workers=2) as gateway:
                    original = gateway._execute_group
                    calls = []

                    def exploding(job, group):
                        if not calls:
                            calls.append(group)
                            raise RuntimeError("injected group failure")
                        return original(job, group)

                    gateway._execute_group = exploding
                    with pytest.raises(RuntimeError, match="injected"):
                        await gateway.submit(nest)
                    gateway._execute_group = original
                    follow_up = await gateway.submit(nest)
                    return gateway.stats(), follow_up

            stats, follow_up = run_async(main())
        assert stats.failed == 1
        assert stats.completed == 1
        assert follow_up.checksum == expected

    def test_aclose_drains_in_flight_jobs(self):
        gate = _Gate()
        nest = example_4_1(8)
        with Session(backend="compiled") as session:
            expected = session.run(nest).checksum

            async def main():
                gateway = Gateway(session, exec_workers=2)
                async with gateway:
                    gate.wrap(gateway)
                    job = asyncio.ensure_future(gateway.submit(nest))
                    while gateway.stats().pending < 1:
                        await asyncio.sleep(0.01)
                    gate.release.set()
                    # __aexit__ drains: by the time the block exits, the
                    # job future must be resolved.
                return gateway, await job

            gateway, result = run_async(main())
        assert result.checksum == expected
        assert gateway.closed
        assert gateway.stats().pending == 0

    def test_submit_after_close_raises(self):
        with Session(backend="compiled") as session:

            async def main():
                gateway = Gateway(session)
                async with gateway:
                    pass
                await gateway.submit(example_4_1(8))

            with pytest.raises(ExecutionError, match="closed"):
                run_async(main())

    def test_aclose_idempotent_and_without_start(self):
        with Session(backend="compiled") as session:

            async def main():
                gateway = Gateway(session)
                await gateway.aclose()
                await gateway.aclose()
                return gateway.closed

            assert run_async(main())

    def test_gateway_leaves_session_open(self):
        with Session(backend="compiled") as session:

            async def main():
                async with Gateway(session) as gateway:
                    await gateway.submit(example_4_1(8))

            run_async(main())
            assert not session.closed
            session.run(example_4_1(8))  # still serves


# --------------------------------------------------------------------------- #
# the sync driver
# --------------------------------------------------------------------------- #
class TestServe:
    def test_serve_matches_session_map(self):
        nests = [example_4_1(8), example_4_2(8)]
        with Session(backend="compiled") as session:
            expected = [result.checksum for result in session.map(nests, repeat=2)]
        with Session(backend="compiled") as session:
            results = serve(session, nests, repeat=2)
        assert [result.checksum for result in results] == expected

    def test_serve_accepts_config(self):
        with Session(backend="compiled") as session:
            results = serve(
                session,
                [example_4_1(8)],
                config=GatewayConfig(max_pending=2, exec_workers=2),
            )
        assert len(results) == 1 and results[0].mode == "gateway"
