"""Tests for repro.loopnest.parser."""

import pytest

from repro.exceptions import SubscriptError
from repro.loopnest.expr import ArrayAccess, BinaryOp, Call, Constant, IndexTerm
from repro.loopnest.parser import parse_affine, parse_expression, parse_statement

INDICES = ["i1", "i2"]


class TestParseAffine:
    def test_simple(self):
        expr = parse_affine("2*i1 - i2 + 3", INDICES)
        assert expr.coefficient("i1") == 2
        assert expr.coefficient("i2") == -1
        assert expr.constant == 3

    def test_commutative_products(self):
        assert parse_affine("i1*3", INDICES).coefficient("i1") == 3
        assert parse_affine("3*i1", INDICES).coefficient("i1") == 3

    def test_nested_parentheses(self):
        expr = parse_affine("-(i1 + 2*(i2 - 1))", INDICES)
        assert expr.coefficient("i1") == -1
        assert expr.coefficient("i2") == -2
        assert expr.constant == 2

    def test_unary_plus(self):
        assert parse_affine("+i1", INDICES).coefficient("i1") == 1

    def test_rejects_unknown_index(self):
        with pytest.raises(SubscriptError):
            parse_affine("i1 + k", INDICES)

    def test_rejects_nonlinear(self):
        with pytest.raises(SubscriptError):
            parse_affine("i1 * i2", INDICES)

    def test_rejects_float_constant(self):
        with pytest.raises(SubscriptError):
            parse_affine("i1 + 1.5", INDICES)

    def test_rejects_garbage(self):
        with pytest.raises(SubscriptError):
            parse_affine("i1 +", INDICES)


class TestParseExpression:
    def test_array_access(self):
        expr = parse_expression("A[i1 - 1, i2 + 2]", INDICES)
        assert isinstance(expr, ArrayAccess)
        assert expr.array == "A"
        assert expr.subscripts[0].constant == -1
        assert expr.subscripts[1].constant == 2

    def test_one_dimensional_access(self):
        expr = parse_expression("A[2*i1 + i2]", INDICES)
        assert isinstance(expr, ArrayAccess)
        assert expr.dimension == 1

    def test_arithmetic_tree(self):
        expr = parse_expression("A[i1, i2] * 0.5 + 1.0", INDICES)
        assert isinstance(expr, BinaryOp)
        assert expr.op == "+"
        assert isinstance(expr.left, BinaryOp)
        assert isinstance(expr.right, Constant)

    def test_index_term(self):
        expr = parse_expression("i1 + 2", INDICES)
        assert isinstance(expr, BinaryOp)
        assert isinstance(expr.left, IndexTerm)

    def test_call(self):
        expr = parse_expression("sin(A[i1, i2]) + sqrt(4.0)", INDICES)
        assert isinstance(expr.left, Call)
        assert expr.left.name == "sin"

    def test_unknown_bare_name(self):
        with pytest.raises(SubscriptError):
            parse_expression("A[i1, i2] + scalar", INDICES)

    def test_unknown_function(self):
        with pytest.raises(SubscriptError):
            parse_expression("eval(1)", INDICES)

    def test_nonlinear_subscript_rejected(self):
        with pytest.raises(SubscriptError):
            parse_expression("A[i1*i2]", INDICES)

    def test_complex_subscripted_value_rejected(self):
        with pytest.raises(SubscriptError):
            parse_expression("(A + B)[i1]", INDICES)


class TestParseStatement:
    def test_simple_statement(self):
        stmt = parse_statement("A[i1, i2] = A[i1 - 1, i2] + 1.0", INDICES)
        assert stmt.target.array == "A"
        refs = stmt.references(0)
        assert len(refs) == 2
        assert refs[0].is_write and not refs[1].is_write

    def test_statement_roundtrips_through_source(self):
        stmt = parse_statement("A[i1, i2] = B[2*i1, i2 - 3] * 2.0", INDICES)
        text = stmt.to_source()
        reparsed = parse_statement(text, INDICES)
        assert reparsed.target == stmt.target

    def test_rejects_expression_only(self):
        with pytest.raises(SubscriptError):
            parse_statement("A[i1, i2] + 1", INDICES)

    def test_rejects_scalar_target(self):
        with pytest.raises(SubscriptError):
            parse_statement("x = A[i1, i2]", INDICES)

    def test_rejects_chained_assignment(self):
        with pytest.raises(SubscriptError):
            parse_statement("A[i1, i2] = B[i1, i2] = 1.0", INDICES)

    def test_rejects_multiple_statements(self):
        with pytest.raises(SubscriptError):
            parse_statement("A[i1, i2] = 1.0; B[i1, i2] = 2.0", INDICES)
