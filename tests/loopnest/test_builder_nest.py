"""Tests for the loop-nest builder, LoopNest and LoopBounds."""

import pytest

from repro.exceptions import BoundsError, LoopNestError
from repro.loopnest.affine import AffineExpr
from repro.loopnest.bounds import LoopBounds
from repro.loopnest.builder import loop_nest
from repro.loopnest.codegen import render_loop_nest
from repro.loopnest.nest import LoopNest
from repro.loopnest.parser import parse_statement


class TestLoopBounds:
    def test_constant_bounds(self):
        bounds = LoopBounds(-3, 7)
        assert bounds.is_constant
        assert bounds.lower_value({}) == -3
        assert bounds.upper_value({}) == 7
        assert bounds.extent({}) == 11

    def test_affine_bounds(self):
        bounds = LoopBounds(AffineExpr.variable("i1"), AffineExpr.variable("i1") + 4)
        assert not bounds.is_constant
        assert bounds.extent({"i1": 2}) == 5
        assert bounds.variables() == {"i1"}

    def test_empty_extent(self):
        assert LoopBounds(5, 3).extent({}) == 0

    def test_invalid_bound_type(self):
        with pytest.raises(BoundsError):
            LoopBounds(1.5, 3)


class TestBuilder:
    def test_basic_build(self):
        nest = (
            loop_nest("demo")
            .loop("i1", 0, 4)
            .loop("i2", 0, "i1")
            .statement("A[i1, i2] = A[i1 - 1, i2] + 1.0")
            .build()
        )
        assert nest.depth == 2
        assert nest.name == "demo"
        assert not nest.is_rectangular

    def test_assign_api(self):
        nest = (
            loop_nest()
            .loop("i", 0, 3)
            .assign("A", ["2*i"], "A[2*i - 2] + 1.0")
            .build()
        )
        assert nest.statements[0].target.array == "A"
        assert nest.statements[0].target.subscripts[0].coefficient("i") == 2

    def test_duplicate_index_rejected(self):
        with pytest.raises(LoopNestError):
            loop_nest().loop("i", 0, 3).loop("i", 0, 3)

    def test_bound_referencing_inner_index_rejected(self):
        with pytest.raises(Exception):
            loop_nest().loop("i1", 0, "i2").loop("i2", 0, 3).statement(
                "A[i1, i2] = 1.0"
            ).build()


class TestLoopNest:
    def _nest(self, n=3):
        return (
            loop_nest("t")
            .loop("i1", 0, n)
            .loop("i2", 0, n)
            .statement("A[i1, i2] = A[i1 - 1, i2] + B[i1, i2]")
            .build()
        )

    def test_validation_requires_statements(self):
        with pytest.raises(LoopNestError):
            LoopNest(["i"], [LoopBounds(0, 3)], [])

    def test_validation_requires_bounds_per_level(self):
        stmt = parse_statement("A[i] = 1.0", ["i"])
        with pytest.raises(LoopNestError):
            LoopNest(["i", "j"], [LoopBounds(0, 3)], [stmt])

    def test_statement_variable_check(self):
        stmt = parse_statement("A[i, j] = 1.0", ["i", "j"])
        with pytest.raises(LoopNestError):
            LoopNest(["i"], [LoopBounds(0, 3)], [stmt])

    def test_iterations_lexicographic(self):
        nest = self._nest(1)
        assert list(nest.iterations()) == [(0, 0), (0, 1), (1, 0), (1, 1)]

    def test_iteration_count(self):
        assert self._nest(3).iteration_count() == 16

    def test_iteration_count_triangular(self):
        nest = (
            loop_nest()
            .loop("i1", 0, 3)
            .loop("i2", 0, "i1")
            .statement("A[i1, i2] = 1.0")
            .build()
        )
        assert nest.iteration_count() == 4 + 3 + 2 + 1

    def test_contains_iteration(self):
        nest = self._nest(2)
        assert nest.contains_iteration((0, 2))
        assert not nest.contains_iteration((0, 3))
        assert not nest.contains_iteration((0,))

    def test_env_for(self):
        nest = self._nest(2)
        assert nest.env_for((1, 2)) == {"i1": 1, "i2": 2}
        with pytest.raises(LoopNestError):
            nest.env_for((1,))

    def test_references(self):
        nest = self._nest()
        refs = nest.references()
        assert len(refs) == 3
        assert len(nest.write_references()) == 1
        assert len(nest.read_references()) == 2
        assert nest.array_names() == {"A", "B"}

    def test_inequality_system_matches_bounds(self):
        nest = self._nest(4)
        system = nest.inequality_system()
        assert system.satisfied_by([0, 4])
        assert not system.satisfied_by([0, 5])
        assert not system.satisfied_by([-1, 0])

    def test_with_statements_and_rename(self):
        nest = self._nest()
        stmt = parse_statement("A[i1, i2] = 2.0", ["i1", "i2"])
        replaced = nest.with_statements([stmt])
        assert len(replaced.statements) == 1
        renamed = nest.rename("other")
        assert renamed.name == "other"
        assert renamed.depth == nest.depth


class TestRendering:
    def test_render_do_loops(self):
        nest = (
            loop_nest("r")
            .loop("i1", -2, 2)
            .loop("i2", 0, 3)
            .statement("A[i1, i2] = A[i1 - 1, i2] + 1.0")
            .build()
        )
        text = render_loop_nest(nest)
        assert "do i1 = -2, 2" in text
        assert "do i2 = 0, 3" in text
        assert text.count("enddo") == 2

    def test_render_doall_annotation(self):
        nest = (
            loop_nest("r")
            .loop("i1", 0, 3)
            .statement("A[i1] = 1.0")
            .build()
        )
        text = render_loop_nest(nest, doall_levels=[0])
        assert "doall i1" in text

    def test_str_uses_renderer(self):
        nest = self._simple()
        assert "do i1" in str(nest)

    def _simple(self):
        return loop_nest("s").loop("i1", 0, 1).statement("A[i1] = 1.0").build()
