"""Canonicalization invariance: naming never changes the analysis cache key."""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.cli import parse_loop_text
from repro.loopnest.canonical import (
    canonical_hash,
    canonical_key,
    canonicalize,
    rename_nest_arrays,
    rename_nest_indices,
)
from repro.loopnest.expr import UnaryOp
from repro.loopnest.statement import Statement
from repro.workloads.paper_examples import example_4_1, example_4_2
from repro.workloads.kernels import wavefront_recurrence
from repro.workloads.suite import workload_suite
from repro.workloads.synthetic import random_affine_loop

_SETTINGS = dict(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestIndexRenamingInvariance:
    @settings(**_SETTINGS)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_random_nest_positional_rename(self, seed):
        nest = random_affine_loop(seed=seed, n=3)
        new_names = [f"k{i + 1}" for i in range(nest.depth)]
        renamed = rename_nest_indices(nest, new_names)
        assert renamed.index_names == tuple(new_names)
        assert canonical_hash(renamed) == canonical_hash(nest)
        assert canonical_key(renamed) == canonical_key(nest)

    @settings(**_SETTINGS)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_random_nest_name_swap(self, seed):
        nest = random_affine_loop(seed=seed, n=2)
        swapped = rename_nest_indices(nest, list(reversed(nest.index_names)))
        # Positional swap of the *names* only — loop order is unchanged, so
        # the structure (and hash) is identical.
        assert canonical_hash(swapped) == canonical_hash(nest)

    def test_array_renaming_invariance(self):
        nest = example_4_1(6)
        renamed = rename_nest_arrays(nest, {"A": "ZZ_buffer"})
        assert "ZZ_buffer" in renamed.array_names()
        assert canonical_hash(renamed) == canonical_hash(nest)

    def test_nest_name_ignored(self):
        nest = example_4_1(6)
        assert canonical_hash(nest.rename("something-else")) == canonical_hash(nest)


class TestStatementPreservingRewrites:
    @settings(**_SETTINGS)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_unary_plus_is_dropped(self, seed):
        nest = random_affine_loop(seed=seed, n=2)
        wrapped = nest.with_statements(
            [Statement(s.target, UnaryOp("+", s.rhs)) for s in nest.statements]
        )
        assert canonical_hash(wrapped) == canonical_hash(nest)

    def test_int_and_float_constants_agree(self):
        a = parse_loop_text("loop i1 = 0 .. 5\nA[i1] = A[i1 - 1] + 2\n")
        b = parse_loop_text("loop i1 = 0 .. 5\nA[i1] = A[i1 - 1] + 2.0\n")
        assert canonical_hash(a) == canonical_hash(b)

    def test_combined_rewrite_chain(self):
        """Rename indices, rename arrays, rename the nest, wrap in unary plus —
        the hash survives the whole chain."""
        nest = example_4_2(6)
        rewritten = rename_nest_indices(nest, ["p", "q"])
        rewritten = rename_nest_arrays(rewritten, {name: f"buf_{name}" for name in rewritten.array_names()})
        rewritten = rewritten.with_statements(
            [Statement(s.target, UnaryOp("+", s.rhs)) for s in rewritten.statements]
        )
        rewritten = rewritten.rename("rewritten")
        assert canonical_hash(rewritten) == canonical_hash(nest)


class TestHashDiscriminates:
    def test_different_bounds_differ(self):
        assert canonical_hash(example_4_1(6)) != canonical_hash(example_4_1(8))

    def test_different_kernels_differ(self):
        hashes = {
            canonical_hash(example_4_1(6)),
            canonical_hash(example_4_2(6)),
            canonical_hash(wavefront_recurrence(6)),
        }
        assert len(hashes) == 3

    def test_extra_statement_differs(self):
        base = parse_loop_text("loop i1 = 0 .. 5\nA[i1] = A[i1 - 1] + 1.0\n")
        more = parse_loop_text(
            "loop i1 = 0 .. 5\nA[i1] = A[i1 - 1] + 1.0\nB[i1] = A[i1] + 1.0\n"
        )
        assert canonical_hash(base) != canonical_hash(more)

    def test_array_identity_structure_differs(self):
        # Reading the written array vs. reading a different array is a
        # different dependence structure, not a naming change.
        same = parse_loop_text("loop i1 = 0 .. 5\nA[i1] = A[i1 - 1] + 1.0\n")
        other = parse_loop_text("loop i1 = 0 .. 5\nA[i1] = B[i1 - 1] + 1.0\n")
        assert canonical_hash(same) != canonical_hash(other)


class TestCanonicalForm:
    def test_canonical_nest_shape(self):
        form = canonicalize(example_4_1(6))
        assert form.nest.index_names == ("c1", "c2")
        assert form.nest.array_names() == {"A0"}
        assert form.nest.name == "canonical"
        assert form.hash == canonical_hash(example_4_1(6))

    def test_canonicalization_is_idempotent(self):
        nest = example_4_2(6)
        form = canonicalize(nest)
        assert canonical_hash(form.nest) == form.hash
        assert canonicalize(form.nest).key == form.key

    def test_workload_suite_hashes_are_deterministic(self):
        first = [canonical_hash(case.nest) for case in workload_suite(6)]
        second = [canonical_hash(case.nest) for case in workload_suite(6)]
        assert first == second

    def test_canonical_nest_preserves_iteration_space(self):
        nest = wavefront_recurrence(5)
        form = canonicalize(nest)
        assert form.nest.iteration_count() == nest.iteration_count()
        assert form.nest.depth == nest.depth
