"""Tests for repro.loopnest.affine."""

import pytest

from repro.exceptions import ReproError, SubscriptError
from repro.loopnest.affine import AffineExpr


class TestConstruction:
    def test_constant(self):
        expr = AffineExpr.constant_expr(5)
        assert expr.is_constant
        assert expr.constant == 5
        assert expr.evaluate({}) == 5

    def test_variable(self):
        expr = AffineExpr.variable("i1", 3)
        assert expr.coefficient("i1") == 3
        assert expr.coefficient("i2") == 0
        assert expr.variables() == {"i1"}

    def test_zero_coefficients_dropped(self):
        expr = AffineExpr({"i1": 0, "i2": 2}, 1)
        assert expr.variables() == {"i2"}

    def test_from_coefficients(self):
        expr = AffineExpr.from_coefficients(["i1", "i2"], [2, -1], 4)
        assert expr.evaluate({"i1": 1, "i2": 3}) == 2 - 3 + 4

    def test_from_coefficients_length_mismatch(self):
        with pytest.raises(SubscriptError):
            AffineExpr.from_coefficients(["i1"], [1, 2])


class TestArithmetic:
    def test_add_sub(self):
        a = AffineExpr.variable("i1") + AffineExpr.variable("i2") * 2 + 3
        b = AffineExpr.variable("i1") - 1
        total = a - b
        assert total.coefficient("i1") == 0
        assert total.coefficient("i2") == 2
        assert total.constant == 4

    def test_radd_rsub_rmul(self):
        expr = 5 + AffineExpr.variable("i")
        assert expr.constant == 5
        expr = 5 - AffineExpr.variable("i")
        assert expr.coefficient("i") == -1
        expr = 3 * AffineExpr.variable("i")
        assert expr.coefficient("i") == 3

    def test_neg(self):
        expr = -(AffineExpr.variable("i1", 2) + 1)
        assert expr.coefficient("i1") == -2
        assert expr.constant == -1

    def test_mul_by_non_integer_rejected(self):
        with pytest.raises(ReproError):
            AffineExpr.variable("i") * 1.5

    def test_cancellation_produces_constant(self):
        expr = AffineExpr.variable("i") - AffineExpr.variable("i")
        assert expr.is_constant
        assert expr.constant == 0


class TestEvaluationVectorization:
    def test_evaluate_missing_variable(self):
        expr = AffineExpr.variable("i1")
        with pytest.raises(SubscriptError):
            expr.evaluate({"i2": 3})

    def test_vectorize(self):
        expr = AffineExpr({"i2": 3, "i1": -1}, 7)
        coeffs, const = expr.vectorize(["i1", "i2", "i3"])
        assert coeffs == [-1, 3, 0]
        assert const == 7

    def test_vectorize_unknown_variable(self):
        expr = AffineExpr.variable("k")
        with pytest.raises(SubscriptError):
            expr.vectorize(["i1", "i2"])

    def test_substitute(self):
        expr = AffineExpr({"i1": 2}, 1)
        substituted = expr.substitute({"i1": AffineExpr({"j1": 1, "j2": 1}, 0)})
        assert substituted.coefficient("j1") == 2
        assert substituted.coefficient("j2") == 2
        assert substituted.constant == 1


class TestDunder:
    def test_equality_and_hash(self):
        a = AffineExpr({"i": 1}, 2)
        b = AffineExpr.variable("i") + 2
        assert a == b
        assert hash(a) == hash(b)
        assert a != AffineExpr({"i": 1}, 3)

    def test_str_forms(self):
        assert str(AffineExpr.constant_expr(-10)) == "-10"
        assert str(AffineExpr.variable("i1")) == "i1"
        text = str(AffineExpr({"i1": 1, "i2": -2}, 3))
        assert "i1" in text and "i2" in text and "3" in text

    def test_repr_roundtrip_info(self):
        expr = AffineExpr({"i": 2}, -1)
        assert "2" in repr(expr) and "-1" in repr(expr)
