"""Tests for repro.loopnest.expr (body expression AST)."""

import math

import pytest

from repro.exceptions import ExecutionError, SubscriptError
from repro.loopnest.affine import AffineExpr
from repro.loopnest.expr import (
    ArrayAccess,
    BinaryOp,
    Call,
    Constant,
    IndexTerm,
    UnaryOp,
    collect_array_accesses,
)
from repro.runtime.arrays import OffsetArray


@pytest.fixture()
def store():
    array = OffsetArray.from_window([-5, -5], [5, 5])
    for x in range(-5, 6):
        for y in range(-5, 6):
            array[x, y] = 10 * x + y
    return {"A": array}


def _access(name, *subscripts):
    return ArrayAccess(name, tuple(AffineExpr(coeffs, const) for coeffs, const in subscripts))


class TestNodes:
    def test_constant(self):
        assert Constant(2.5).evaluate({}, {}) == 2.5
        assert Constant(3).to_source() == "3"

    def test_index_term(self, store):
        term = IndexTerm(AffineExpr({"i1": 2}, 1))
        assert term.evaluate({"i1": 3}, store) == 7
        assert term.variables() == {"i1"}

    def test_array_access_evaluate(self, store):
        access = _access("A", ({"i1": 1}, 0), ({"i2": 1}, -1))
        assert access.evaluate({"i1": 2, "i2": 3}, store) == 10 * 2 + 2
        assert access.dimension == 2

    def test_array_access_missing_array(self, store):
        access = _access("Z", ({"i1": 1}, 0))
        with pytest.raises(ExecutionError):
            access.evaluate({"i1": 0}, store)

    def test_array_access_requires_affine(self):
        with pytest.raises(SubscriptError):
            ArrayAccess("A", ("not affine",))
        with pytest.raises(SubscriptError):
            ArrayAccess("A", ())

    def test_access_matrix(self):
        access = _access("A", ({"i1": 1, "i2": 2}, 3), ({"i2": -1}, 0))
        matrix, offsets = access.access_matrix(["i1", "i2"])
        assert matrix == [[1, 2], [0, -1]]
        assert offsets == [3, 0]

    def test_binary_and_unary(self, store):
        expr = BinaryOp("+", Constant(1), UnaryOp("-", Constant(4)))
        assert expr.evaluate({}, store) == -3
        expr = BinaryOp("*", IndexTerm(AffineExpr({"i": 1}, 0)), Constant(2.0))
        assert expr.evaluate({"i": 3}, store) == 6.0

    def test_binary_rejects_unknown_operator(self):
        with pytest.raises(SubscriptError):
            BinaryOp("@", Constant(1), Constant(2))

    def test_unary_rejects_unknown_operator(self):
        with pytest.raises(SubscriptError):
            UnaryOp("!", Constant(1))

    def test_call(self, store):
        expr = Call("sqrt", (Constant(9.0),))
        assert expr.evaluate({}, store) == 3.0
        expr = Call("max", (Constant(1), Constant(5)))
        assert expr.evaluate({}, store) == 5

    def test_call_rejects_unknown_function(self):
        with pytest.raises(SubscriptError):
            Call("system", (Constant(1),))


class TestTraversal:
    def test_collect_array_accesses_order(self, store):
        a1 = _access("A", ({"i1": 1}, 0), ({"i2": 1}, 0))
        a2 = _access("A", ({"i1": 1}, -1), ({"i2": 1}, 0))
        expr = BinaryOp("+", a1, BinaryOp("*", Constant(2), a2))
        accesses = collect_array_accesses(expr)
        assert accesses == [a1, a2]

    def test_variables_union(self):
        expr = BinaryOp(
            "+",
            IndexTerm(AffineExpr({"i1": 1}, 0)),
            Call("sin", (IndexTerm(AffineExpr({"i2": 1}, 0)),)),
        )
        assert expr.variables() == {"i1", "i2"}

    def test_to_source_is_parsable(self):
        a1 = _access("A", ({"i1": 1}, 1))
        expr = BinaryOp("/", a1, Constant(2.0))
        source = expr.to_source()
        assert "A[" in source and "/" in source
