"""The distributed serving tier, end to end over loopback workers.

The acceptance contracts pinned here:

* **bit-identical results** — a mixed hot/cold stream served by a
  2-worker loopback cluster produces exactly the stores (and checksums) a
  serial single-process run produces: where a chunk group executes can
  never change a cell (Lemma 1 / Theorem 2);
* **plans are the wire format** — a warm program's requests carry only
  its hash, the chunk indices and the store arrays: the program ships at
  most once per (program, node);
* **the failure ladder** — per-request timeout, bounded retry on a
  different node, transparent local fallback when every replica is down,
  each rung bit-identical; a worker SIGKILLed mid-batch loses no job;
* **deterministic errors skip the ladder** — a loop-body
  :class:`ExecutionError` surfaces at the caller like a serial run would,
  never a retry or fallback.

Real workers run as subprocesses of the actual CLI (``repro worker
--listen 127.0.0.1:0``); the failure-ladder unit tests use in-process
fake nodes speaking the real protocol.
"""

import contextlib
import os
import re
import socket
import subprocess
import sys
import threading

import numpy as np
import pytest

from repro.api import Session, SessionConfig
from repro.cluster import proto
from repro.cluster.client import ClusterConfig, ClusterScheduler, HashRing
from repro.cluster.worker import WorkerConfig
from repro.exceptions import ClusterError, ExecutionError, WorkloadError
from repro.gateway import serve
from repro.runtime.arrays import store_for_nest
from repro.workloads.paper_examples import example_4_1, example_4_2
from repro.workloads.synthetic import variable_distance_loop

TIMEOUT = 30.0

#: A mixed stream: three distinct programs, repeated (hot) requests.
def _stream():
    return [
        example_4_1(12),
        example_4_2(12),
        variable_distance_loop(2, 12),
        example_4_1(12),
        example_4_2(12),
        example_4_1(12),
    ]


def _serial_results(nests):
    with Session(mode="serial", backend="vectorized") as session:
        return [session.run(nest) for nest in nests]


@contextlib.contextmanager
def spawn_workers(count, backend="vectorized", disk_cache=None):
    """`count` real worker daemons on ephemeral loopback ports."""
    procs, addrs = [], []
    env = dict(os.environ)
    try:
        for _ in range(count):
            argv = [
                sys.executable, "-m", "repro.cli", "worker",
                "--listen", "127.0.0.1:0", "--backend", backend,
            ]
            if disk_cache is not None:
                argv += ["--disk-cache", str(disk_cache)]
            proc = subprocess.Popen(
                argv,
                stdout=subprocess.PIPE,
                stderr=subprocess.DEVNULL,
                text=True,
                env=env,
            )
            procs.append(proc)
            line = proc.stdout.readline()
            match = re.search(r"listening on ([\d.]+:\d+)", line)
            assert match, f"worker failed to start: {line!r}"
            addrs.append(match.group(1))
        yield procs, tuple(addrs)
    finally:
        for proc in procs:
            if proc.poll() is None:
                proc.terminate()
        for proc in procs:
            with contextlib.suppress(Exception):
                proc.wait(timeout=10)
            if proc.stdout is not None:
                proc.stdout.close()


def _config(addrs, **overrides):
    options = dict(
        nodes=tuple(addrs), timeout=15.0, connect_timeout=3.0, cooldown=30.0
    )
    options.update(overrides)
    return ClusterConfig(**options)


class _FakeNode:
    """An in-process node speaking the real protocol with canned replies."""

    def __init__(self, responder):
        self._responder = responder
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(8)
        self._listener.settimeout(0.2)
        self.address = "127.0.0.1:{}".format(self._listener.getsockname()[1])
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self):
        while not self._stop.is_set():
            try:
                conn, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            threading.Thread(
                target=self._handle, args=(conn,), daemon=True
            ).start()

    def _handle(self, conn):
        with contextlib.suppress(Exception), conn:
            while not self._stop.is_set():
                message = proto.recv_message(conn)
                proto.send_message(conn, self._responder(message))

    def close(self):
        self._stop.set()
        with contextlib.suppress(OSError):
            self._listener.close()
        self._thread.join(TIMEOUT)


def _program(session, nest):
    analysis = session._analyze_nest(nest, placement=None, name=None)
    return session._program_for(nest, analysis.report)


# --------------------------------------------------------------------------- #
# configuration and routing
# --------------------------------------------------------------------------- #
class TestClusterConfig:
    def test_requires_nodes(self):
        with pytest.raises(WorkloadError, match="at least one node"):
            ClusterConfig(nodes=())

    @pytest.mark.parametrize("node", ["nohost", "host:", ":123", "host:port"])
    def test_rejects_malformed_nodes(self, node):
        with pytest.raises(WorkloadError, match="HOST:PORT"):
            ClusterConfig(nodes=(node,))

    def test_rejects_bad_knobs(self):
        with pytest.raises(WorkloadError):
            ClusterConfig(nodes=("h:1",), fanout=-1)
        with pytest.raises(WorkloadError):
            ClusterConfig(nodes=("h:1",), retries=-1)
        with pytest.raises(WorkloadError):
            ClusterConfig(nodes=("h:1",), timeout=0)

    def test_session_config_convenience_spellings(self):
        from_string = SessionConfig(cluster="h1:1, h2:2")
        assert from_string.cluster.nodes == ("h1:1", "h2:2")
        from_list = SessionConfig(cluster=["h1:1", "h2:2"])
        assert from_list.cluster.nodes == ("h1:1", "h2:2")
        passthrough = ClusterConfig(nodes=("h1:1",))
        assert SessionConfig(cluster=passthrough).cluster is passthrough

    def test_worker_listen_parsing(self):
        assert WorkerConfig.parse_listen("0.0.0.0:9100") == ("0.0.0.0", 9100)
        with pytest.raises(ValueError):
            WorkerConfig.parse_listen("9100")


class TestHashRing:
    NODES = ("10.0.0.1:9100", "10.0.0.2:9100", "10.0.0.3:9100")

    def test_deterministic_and_distinct(self):
        ring = HashRing(self.NODES)
        order = ring.nodes_for("some-program-hash")
        assert ring.nodes_for("some-program-hash") == order
        assert sorted(order) == sorted(self.NODES)

    def test_count_limits_fanout(self):
        ring = HashRing(self.NODES)
        assert len(ring.nodes_for("k", 2)) == 2
        assert len(ring.nodes_for("k", 0)) == len(self.NODES)

    def test_membership_change_remaps_few_keys(self):
        ring = HashRing(self.NODES)
        smaller = HashRing(self.NODES[:2])
        keys = [f"program-{i}" for i in range(200)]
        moved = 0
        for key in keys:
            before = ring.nodes_for(key, 1)[0]
            after = smaller.nodes_for(key, 1)[0]
            if before != after:
                moved += 1
                # A key only moves because its primary was removed.
                assert before == self.NODES[2]
        # Consistent hashing: roughly 1/3 of the keys move, never most.
        assert moved < len(keys) * 0.6

    def test_keys_spread_over_nodes(self):
        ring = HashRing(self.NODES)
        primaries = {ring.nodes_for(f"key-{i}", 1)[0] for i in range(100)}
        assert primaries == set(self.NODES)


# --------------------------------------------------------------------------- #
# the real thing: loopback workers
# --------------------------------------------------------------------------- #
class TestLoopbackCluster:
    def test_mixed_stream_bit_identical_to_serial(self):
        nests = _stream()
        expected = _serial_results(nests)
        with spawn_workers(2) as (_, addrs):
            with Session(
                mode="serial", backend="vectorized", cluster=_config(addrs)
            ) as session:
                actual = [session.run(nest) for nest in nests]
                stats = session.cluster_stats()
        for want, got in zip(expected, actual):
            assert got.checksum == want.checksum
            assert got.mode == "cluster"
            for name in want.store.keys():
                np.testing.assert_array_equal(
                    got.store[name].data, want.store[name].data
                )
        assert stats.jobs == len(nests)
        assert stats.remote_groups > 0
        assert stats.local_fallbacks == 0

    def test_warm_programs_ship_at_most_once_per_node(self):
        nests = _stream()
        with spawn_workers(2) as (_, addrs):
            with Session(
                mode="serial", backend="vectorized", cluster=_config(addrs)
            ) as session:
                for nest in nests:
                    session.run(nest)
                shipped_after_first_pass = session.cluster_stats().programs_shipped
                # The whole stream again: every program is warm everywhere
                # it routes, so not one more program crosses the wire.
                for nest in nests:
                    session.run(nest)
                stats = session.cluster_stats()
                pongs = session.cluster_scheduler.ping_all()
        distinct_programs = 3
        assert stats.programs_shipped == shipped_after_first_pass
        assert stats.programs_shipped <= distinct_programs * len(addrs)
        cached = [pong["programs_cached"] for pong in pongs.values() if pong]
        assert sum(cached) >= distinct_programs

    def test_worker_stats_reported_via_ping(self):
        with spawn_workers(1) as (_, addrs):
            with Session(
                mode="serial", backend="vectorized", cluster=_config(addrs)
            ) as session:
                session.run(example_4_1(10))
                pong = session.cluster_scheduler.ping(addrs[0])
        assert pong is not None
        assert pong["requests"] >= 1
        assert pong["executed_groups"] >= 1
        assert pong["backend"] == "vectorized"
        assert pong["protocol_version"] == proto.PROTOCOL_VERSION

    def test_gateway_drains_onto_cluster(self):
        nests = _stream()
        expected = [result.checksum for result in _serial_results(nests)]
        with spawn_workers(2) as (_, addrs):
            with Session(
                mode="serial", backend="vectorized", cluster=_config(addrs)
            ) as session:
                results = serve(session, nests)
                stats = session.cluster_stats()
        assert [result.checksum for result in results] == expected
        assert stats.remote_groups > 0

    def test_restarted_worker_reloads_programs_from_disk(self, tmp_path):
        nest = example_4_1(12)
        expected = _serial_results([nest])[0].checksum
        with spawn_workers(1, disk_cache=tmp_path) as (_, addrs):
            with Session(
                mode="serial", backend="vectorized", cluster=_config(addrs)
            ) as session:
                session.run(nest)
                assert session.cluster_stats().programs_shipped == 1
        # A "restarted node": new process, same disk cache directory.
        with spawn_workers(1, disk_cache=tmp_path) as (_, addrs):
            with Session(
                mode="serial", backend="vectorized", cluster=_config(addrs)
            ) as session:
                result = session.run(nest)
                stats = session.cluster_stats()
        assert result.checksum == expected
        assert stats.programs_shipped == 0  # served from the worker's disk


# --------------------------------------------------------------------------- #
# the failure ladder
# --------------------------------------------------------------------------- #
class TestFailureLadder:
    def test_all_nodes_down_falls_back_to_local(self):
        nests = _stream()[:3]
        expected = _serial_results(nests)
        # Nobody listens on these ports: every group walks the whole
        # ladder and lands on the local backend.
        config = _config(
            ("127.0.0.1:1", "127.0.0.1:2"), retries=1, connect_timeout=0.5
        )
        with Session(
            mode="serial", backend="vectorized", cluster=config
        ) as session:
            actual = [session.run(nest) for nest in nests]
            stats = session.cluster_stats()
        for want, got in zip(expected, actual):
            assert got.checksum == want.checksum
            assert got.execution.fallback == "cluster→local"
        assert stats.local_fallbacks > 0
        assert stats.node_failures > 0

    def test_sigkill_mid_batch_loses_no_job(self):
        nests = _stream()
        expected = [result.checksum for result in _serial_results(nests)]
        with spawn_workers(2) as (procs, addrs):
            config = _config(addrs, retries=1, connect_timeout=2.0)
            with Session(
                mode="serial", backend="vectorized", cluster=config
            ) as session:
                checksums = []
                for index, nest in enumerate(nests):
                    if index == len(nests) // 2:
                        procs[0].kill()  # SIGKILL, mid-batch
                        procs[0].wait(timeout=10)
                    checksums.append(session.run(nest).checksum)
                stats = session.cluster_stats()
        assert checksums == expected
        # The dead node was noticed (retry or fallback), yet every job
        # completed bit-identically.
        assert stats.node_failures + stats.local_fallbacks >= 1

    def test_internal_node_error_retries_on_another_node(self):
        nest = example_4_1(12)
        expected = _serial_results([nest])[0].checksum
        broken = _FakeNode(
            lambda message: proto.ErrorResponse(
                kind="internal", message="synthetic node fault"
            )
        )
        try:
            with spawn_workers(1) as (_, addrs):
                config = _config(
                    (broken.address, addrs[0]), retries=1, connect_timeout=2.0
                )
                with Session(
                    mode="serial", backend="vectorized", cluster=config
                ) as session:
                    result = session.run(nest)
                    stats = session.cluster_stats()
            assert result.checksum == expected
            assert stats.node_failures >= 1
        finally:
            broken.close()

    def test_execution_error_skips_the_ladder(self):
        nest = example_4_1(12)
        failing = _FakeNode(
            lambda message: proto.ErrorResponse(
                kind="execution",
                message="division by zero in the loop body",
                exc_type="ExecutionError",
            )
        )
        try:
            scheduler = ClusterScheduler(
                _config((failing.address,), retries=3), backend="vectorized"
            )
            with Session(mode="serial", backend="vectorized") as session:
                transformed, plan = _program(session, nest)
                store = store_for_nest(nest)
                with pytest.raises(ExecutionError, match="division by zero"):
                    scheduler.run(transformed, plan, store)
            # Deterministic failure: no retry, no local fallback.
            assert scheduler.stats.local_fallbacks == 0
            assert scheduler.stats.execution_errors >= 1
            scheduler.close()
        finally:
            failing.close()

    def test_cold_worker_asks_for_program_once(self):
        # White-box protocol walk: hash-only request → NeedProgram →
        # request with program attached → ExecuteResponse.
        nest = example_4_1(12)
        with spawn_workers(1) as (_, addrs):
            host, port = addrs[0].rsplit(":", 1)
            with Session(mode="serial", backend="vectorized") as session:
                transformed, plan = _program(session, nest)
                store = store_for_nest(nest)
                program_id, routing = ClusterScheduler.program_id_for(
                    transformed, plan
                )
                sock = socket.create_connection((host, int(port)), timeout=10)
                try:
                    bare = proto.ExecuteRequest(
                        program=program_id,
                        routing=routing,
                        chunk_indices=(0,),
                        store=store,
                    )
                    proto.send_message(sock, bare)
                    first = proto.recv_message(sock)
                    assert isinstance(first, proto.NeedProgram)
                    bare.transformed = transformed
                    bare.plan = plan
                    proto.send_message(sock, bare)
                    second = proto.recv_message(sock)
                    assert isinstance(second, proto.ExecuteResponse)
                    # Warm now: the bare spelling succeeds immediately.
                    bare.transformed = None
                    bare.plan = None
                    proto.send_message(sock, bare)
                    third = proto.recv_message(sock)
                    assert isinstance(third, proto.ExecuteResponse)
                    assert third.iterations == second.iterations > 0
                finally:
                    sock.close()

    def test_scheduler_close_is_idempotent_and_rejects_runs(self):
        scheduler = ClusterScheduler(
            _config(("127.0.0.1:1",)), backend="vectorized"
        )
        scheduler.close()
        scheduler.close()
        with Session(mode="serial", backend="vectorized") as session:
            transformed, plan = _program(session, example_4_1(8))
            with pytest.raises(ClusterError, match="closed"):
                scheduler.run(transformed, plan, store_for_nest(example_4_1(8)))
