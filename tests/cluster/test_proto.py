"""The cluster wire protocol: framing, versioning, both transport flavors."""

import asyncio
import pickle
import socket
import struct
import threading

import pytest

from repro.cluster import proto
from repro.exceptions import ClusterProtocolError

TIMEOUT = 30.0


def run_async(coro):
    async def _bounded():
        return await asyncio.wait_for(coro, timeout=TIMEOUT)

    return asyncio.run(_bounded())


MESSAGES = [
    proto.PingRequest(),
    proto.PongResponse(stats={"requests": 3}),
    proto.NeedProgram(program="abc:123"),
    proto.ErrorResponse(kind="execution", message="boom", exc_type="ExecutionError"),
    proto.ExecuteRequest(
        program="abc:123", routing="abc", chunk_indices=(0, 2), store=None
    ),
    proto.ExecuteResponse(
        program="abc:123", store=None, elapsed_seconds=0.5, iterations=64
    ),
]


class TestFraming:
    @pytest.mark.parametrize("message", MESSAGES, ids=lambda m: type(m).__name__)
    def test_encode_decode_roundtrip(self, message):
        frame = proto.encode_message(message)
        (length,) = struct.unpack(">Q", frame[:8])
        assert length == len(frame) - 8
        decoded = proto.decode_message(frame[8:])
        assert type(decoded) is type(message)
        assert decoded.__dict__ == message.__dict__

    def test_version_mismatch_rejected(self):
        payload = pickle.dumps((proto.PROTOCOL_VERSION + 1, proto.PingRequest()))
        with pytest.raises(ClusterProtocolError, match="version"):
            proto.decode_message(payload)

    def test_malformed_payload_rejected(self):
        with pytest.raises(ClusterProtocolError, match="undecodable"):
            proto.decode_message(b"not a pickle at all")
        with pytest.raises(ClusterProtocolError, match="malformed"):
            proto.decode_message(pickle.dumps({"no": "tuple"}))

    def test_oversized_announced_frame_rejected(self):
        with pytest.raises(ClusterProtocolError, match="limit"):
            proto._check_length(proto.MAX_FRAME_BYTES + 1)

    def test_oversized_outgoing_frame_rejected(self, monkeypatch):
        monkeypatch.setattr(proto, "MAX_FRAME_BYTES", 16)
        with pytest.raises(ClusterProtocolError, match="refusing to send"):
            proto.encode_message(proto.PongResponse(stats={"k": "x" * 64}))


class TestBlockingSockets:
    def test_send_recv_over_socketpair(self):
        left, right = socket.socketpair()
        try:
            proto.send_message(left, proto.NeedProgram(program="p"))
            message = proto.recv_message(right)
            assert isinstance(message, proto.NeedProgram)
            assert message.program == "p"
        finally:
            left.close()
            right.close()

    def test_eof_mid_frame_raises_connection_error(self):
        left, right = socket.socketpair()
        try:
            frame = proto.encode_message(proto.PingRequest())
            left.sendall(frame[: len(frame) // 2])
            left.close()
            with pytest.raises(ConnectionError, match="mid-frame"):
                proto.recv_message(right)
        finally:
            right.close()

    def test_fragmented_delivery_reassembles(self):
        # One byte at a time across the wire: framing must reassemble.
        left, right = socket.socketpair()
        try:
            frame = proto.encode_message(proto.PongResponse(stats={"n": 1}))
            done = threading.Event()

            def dribble():
                for i in range(len(frame)):
                    left.sendall(frame[i : i + 1])
                done.set()

            thread = threading.Thread(target=dribble)
            thread.start()
            message = proto.recv_message(right)
            done.wait(TIMEOUT)
            thread.join(TIMEOUT)
            assert isinstance(message, proto.PongResponse)
            assert message.stats == {"n": 1}
        finally:
            left.close()
            right.close()


class TestAsyncioStreams:
    def test_stream_roundtrip(self):
        async def main():
            received = []

            async def handler(reader, writer):
                message = await proto.read_message(reader)
                received.append(message)
                await proto.write_message(writer, proto.PongResponse(stats={}))
                writer.close()

            server = await asyncio.start_server(handler, host="127.0.0.1", port=0)
            port = server.sockets[0].getsockname()[1]
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            await proto.write_message(writer, proto.PingRequest())
            reply = await proto.read_message(reader)
            writer.close()
            server.close()
            await server.wait_closed()
            return received, reply

        received, reply = run_async(main())
        assert isinstance(received[0], proto.PingRequest)
        assert isinstance(reply, proto.PongResponse)

    def test_clean_eof_reads_none(self):
        async def main():
            results = []

            async def handler(reader, writer):
                results.append(await proto.read_message(reader))

            server = await asyncio.start_server(handler, host="127.0.0.1", port=0)
            port = server.sockets[0].getsockname()[1]
            _, writer = await asyncio.open_connection("127.0.0.1", port)
            writer.close()  # no frame at all: clean EOF
            await asyncio.sleep(0.05)
            server.close()
            await server.wait_closed()
            return results

        results = run_async(main())
        assert results == [None]
