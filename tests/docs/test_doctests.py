"""Run the public API's docstring examples as doctests.

The docstring pass over :mod:`repro.api`, :mod:`repro.service`,
:mod:`repro.plan` and :mod:`repro.gateway` gives every ``__all__`` symbol
a runnable example; this test keeps those examples true.  It is the
"doctests green" leg of the CI docs job — a doc example that drifts from
the code fails here, not in a reader's terminal.
"""

import doctest
import importlib

import pytest

# Every module whose docstrings carry the public API's examples.  Package
# __init__ modules are listed separately from the defining modules because
# doctest only collects examples from the module the docstring lives in.
DOCTEST_MODULES = [
    "repro.api",
    "repro.api.inputs",
    "repro.api.results",
    "repro.api.session",
    "repro.service",
    "repro.plan",
    "repro.plan.ir",
    "repro.plan.passes",
    "repro.gateway",
    "repro.gateway.gateway",
    "repro.exceptions",
]

# Modules that must actually contain examples — an import shuffle that
# silently moved the docstrings elsewhere should fail, not skip.
MUST_HAVE_EXAMPLES = {
    "repro.api.inputs",
    "repro.api.results",
    "repro.api.session",
    "repro.service",
    "repro.plan.ir",
    "repro.plan.passes",
    "repro.gateway.gateway",
}


@pytest.mark.parametrize("module_name", DOCTEST_MODULES)
def test_module_doctests(module_name):
    module = importlib.import_module(module_name)
    results = doctest.testmod(
        module,
        verbose=False,
        optionflags=doctest.ELLIPSIS,
        report=True,
    )
    assert results.failed == 0, (
        f"{results.failed} doctest example(s) failed in {module_name}"
    )
    if module_name in MUST_HAVE_EXAMPLES:
        assert results.attempted > 0, (
            f"{module_name} is expected to carry runnable docstring examples"
        )


def test_public_symbols_documented_with_examples():
    """Every ``__all__`` symbol of the public packages has a docstring.

    Symbols that are classes or functions must carry their own example
    (``>>>``); constants and aliases are documented (with examples) in
    their defining module's docstring instead, which the doctest runs
    above cover.
    """
    import inspect

    for package_name in ("repro.api", "repro.service", "repro.plan", "repro.gateway"):
        package = importlib.import_module(package_name)
        for symbol in package.__all__:
            obj = getattr(package, symbol)
            if not (inspect.isclass(obj) or inspect.isfunction(obj)):
                continue  # constants/aliases: documented in module docstrings
            docstring = inspect.getdoc(obj) or ""
            assert docstring, f"{package_name}.{symbol} has no docstring"
            assert ">>>" in docstring, (
                f"{package_name}.{symbol} has no runnable docstring example"
            )
