"""The committed CLI reference must match the live argparse tree.

``docs/cli.md`` is generated (``python -m repro.cli --dump-docs``); any CLI
change that forgets to regenerate it fails here.  The renderer itself is
pinned for determinism — same parser, same bytes.
"""

from pathlib import Path

from repro.cli import build_parser, main
from repro.cli_docs import render_cli_docs

DOCS = Path(__file__).resolve().parents[2] / "docs" / "cli.md"


def test_committed_cli_reference_is_in_sync():
    rendered = render_cli_docs(build_parser()) + "\n"
    assert DOCS.read_text() == rendered, (
        "docs/cli.md is out of date: regenerate with "
        "`PYTHONPATH=src python -m repro.cli --dump-docs > docs/cli.md`"
    )


def test_renderer_is_deterministic():
    assert render_cli_docs(build_parser()) == render_cli_docs(build_parser())


def test_dump_docs_flag_prints_reference(capsys):
    assert main(["--dump-docs"]) == 0
    out = capsys.readouterr().out
    assert out == render_cli_docs(build_parser()) + "\n"


def test_every_command_documented():
    rendered = render_cli_docs(build_parser())
    for command in ["analyze", "batch", "codegen", "compare", "figures",
                    "run", "serve", "verify"]:
        assert f"## `repro-loop {command}`" in rendered
