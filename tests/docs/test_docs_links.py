"""The committed documentation passes its own link check."""

import pathlib
import subprocess
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent.parent
CHECKER = REPO_ROOT / "docs" / "check_docs.py"


def test_docs_links_are_valid():
    completed = subprocess.run(
        [sys.executable, str(CHECKER)],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
    )
    assert completed.returncode == 0, (
        f"docs link check failed:\n{completed.stdout}{completed.stderr}"
    )


def test_slugify_matches_github_anchor_rules():
    sys.path.insert(0, str(CHECKER.parent))
    try:
        from check_docs import _slugify
    finally:
        sys.path.pop(0)
    assert _slugify("The async gateway (`repro.gateway`)") == (
        "the-async-gateway-reprogateway"
    )
    assert _slugify("How gating works") == "how-gating-works"
    assert _slugify("Analyze → plan → execute") == "analyze--plan--execute"
