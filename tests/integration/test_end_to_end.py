"""End-to-end correctness over the whole workload suite and verification API."""

import pytest

from repro.core.pipeline import analyze_nest
from repro.core.pdm import PseudoDistanceMatrix
from repro.dependence.graph import realized_distances
from repro.runtime.arrays import store_for_nest
from repro.runtime.verification import verify_transformation


class TestSuiteEndToEnd:
    def test_every_workload_parallelizes_and_preserves_semantics(self, small_suite):
        for case in small_suite:
            report = analyze_nest(case.nest)
            assert report.transform_is_legal(), case.name
            result = verify_transformation(
                case.nest, report, check_emitted_code=True, check_executors=("serial",)
            )
            assert result.passed, f"{case.name}: {result.describe()}"

    def test_every_workload_pdm_is_sound(self, small_suite):
        for case in small_suite:
            pdm = PseudoDistanceMatrix.from_loop_nest(case.nest)
            for distance in realized_distances(case.nest):
                assert pdm.contains_distance(list(distance)), (case.name, distance)

    def test_inner_placement_also_correct(self, small_suite):
        for case in small_suite[:6]:
            report = analyze_nest(case.nest, placement="inner")
            result = verify_transformation(
                case.nest, report, check_emitted_code=False, check_executors=()
            )
            assert result.passed, case.name


class TestVerificationApi:
    def test_report_structure(self, ex41_small, ex41_report):
        result = verify_transformation(
            ex41_small, ex41_report, check_executors=("serial", "threads")
        )
        assert result.passed
        assert "transformed/lexicographic" in result.checks
        assert "transformed/emitted-code" in result.checks
        assert "executor/threads" in result.checks
        assert "PASS" in result.describe()

    def test_accepts_prebuilt_store(self, ex41_small, ex41_report):
        store = store_for_nest(ex41_small, initializer="random", seed=3)
        result = verify_transformation(ex41_small, ex41_report, store=store)
        assert result.passed

    def test_random_initial_contents(self, ex42_small, ex42_report):
        store = store_for_nest(ex42_small, initializer="random", seed=11)
        result = verify_transformation(ex42_small, ex42_report, store=store)
        assert result.passed

    def test_detects_an_illegal_execution_order(self, ex41_small):
        """Sanity check that the verifier can actually fail.

        Reversing the outer loop is illegal for example 4.1 (it reverses the
        direction of the dependences); executing the reversed loop must give a
        different result, and the verifier must notice.
        """
        from repro.codegen.transformed_nest import TransformedLoopNest
        from repro.core.transforms import reversal

        wrong = TransformedLoopNest(nest=ex41_small, transform=reversal(2, 0))
        result = verify_transformation(
            ex41_small, wrong, check_emitted_code=False, check_executors=()
        )
        assert not result.passed
