"""Emitted-code and executor coverage across the workload suite.

Complements the targeted emitter tests: for *every* suite workload the
generated original source must behave exactly like the interpreter, and the
transformed source / executors must match the original results, including on
integer-valued array data.
"""

import numpy as np
import pytest

from repro.codegen.python_emitter import (
    compile_loop_function,
    emit_original_source,
    emit_transformed_source,
)
from repro.codegen.schedule import build_schedule
from repro.codegen.transformed_nest import TransformedLoopNest
from repro.core.pipeline import analyze_nest
from repro.runtime.arrays import store_for_nest
from repro.runtime.executor import ParallelExecutor
from repro.runtime.interpreter import execute_nest


class TestEmittedOriginalAcrossSuite:
    def test_original_source_matches_interpreter(self, small_suite):
        for case in small_suite:
            source = emit_original_source(case.nest)
            function = compile_loop_function(source, "run_original")
            base = store_for_nest(case.nest)
            expected = base.copy()
            execute_nest(case.nest, expected)
            actual = base.copy()
            function(actual)
            assert expected.allclose(actual), case.name

    def test_sources_are_deterministic(self, ex41_small):
        assert emit_original_source(ex41_small) == emit_original_source(ex41_small)
        report = analyze_nest(ex41_small)
        transformed = TransformedLoopNest.from_report(report)
        assert emit_transformed_source(transformed) == emit_transformed_source(transformed)


class TestExecutorsAcrossSuite:
    def test_thread_executor_on_partitionable_workloads(self, small_suite):
        for case in small_suite:
            if case.category != "variable":
                continue
            report = analyze_nest(case.nest)
            transformed = TransformedLoopNest.from_report(report)
            chunks = build_schedule(transformed)
            base = store_for_nest(case.nest)
            expected = base.copy()
            execute_nest(case.nest, expected)
            actual = base.copy()
            ParallelExecutor(mode="threads", workers=3).run(transformed, actual, chunks=chunks)
            assert expected.allclose(actual), case.name

    def test_more_workers_than_chunks(self, ex42_small):
        report = analyze_nest(ex42_small)
        transformed = TransformedLoopNest.from_report(report)
        chunks = build_schedule(transformed)  # 4 chunks
        base = store_for_nest(ex42_small)
        expected = base.copy()
        execute_nest(ex42_small, expected)
        actual = base.copy()
        ParallelExecutor(mode="threads", workers=16).run(transformed, actual, chunks=chunks)
        assert expected.allclose(actual)


class TestIntegerData:
    def test_integer_array_store(self, ex41_small):
        report = analyze_nest(ex41_small)
        transformed = TransformedLoopNest.from_report(report)
        base = store_for_nest(ex41_small, dtype=np.int64, initializer="index_sum")
        expected = base.copy()
        execute_nest(ex41_small, expected)
        source = emit_transformed_source(transformed)
        function = compile_loop_function(source, "run_transformed")
        actual = base.copy()
        function(actual)
        assert expected.allclose(actual)
        assert expected["A"].data.dtype == np.int64
