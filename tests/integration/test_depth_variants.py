"""Coverage of unusual loop depths and shapes (1-deep, 4-deep, triangular).

The paper's examples are all 2-deep; the method itself is stated for
arbitrary depth, so the library must handle shallow and deeper nests and
non-rectangular iteration spaces through the same pipeline.
"""

import pytest

from repro.codegen.schedule import build_schedule, schedule_statistics
from repro.codegen.transformed_nest import TransformedLoopNest
from repro.core.pdm import PseudoDistanceMatrix
from repro.core.pipeline import analyze_nest
from repro.dependence.graph import realized_distances
from repro.loopnest.builder import loop_nest
from repro.runtime.verification import verify_transformation


class TestOneDeepLoops:
    def test_strided_recurrence(self):
        nest = (
            loop_nest("one-deep")
            .loop("i", 0, 30)
            .statement("A[i] = A[i - 3] + 1.0")
            .build()
        )
        pdm = PseudoDistanceMatrix.from_loop_nest(nest)
        assert pdm.matrix == [[3]]
        report = analyze_nest(nest)
        assert report.partition_count == 3
        assert verify_transformation(nest, report, check_executors=("serial",)).passed

    def test_independent_one_deep(self):
        nest = loop_nest("copy").loop("i", 0, 10).statement("A[i] = B[i] + 1.0").build()
        report = analyze_nest(nest)
        assert report.parallel_levels == (0,)
        assert verify_transformation(nest, report, check_executors=()).passed

    def test_dense_recurrence_is_sequential(self):
        nest = loop_nest("seq").loop("i", 0, 10).statement("A[i] = A[i - 1] + 1.0").build()
        report = analyze_nest(nest)
        assert report.is_fully_sequential


class TestFourDeepLoops:
    @pytest.fixture()
    def nest(self):
        return (
            loop_nest("four-deep")
            .loop("i1", 0, 3)
            .loop("i2", 0, 3)
            .loop("i3", 0, 3)
            .loop("i4", 0, 3)
            .statement(
                "A[i1, i2, i3, i4] = A[i1 - 2, i2, i3 - 2, i4] + B[i1, i2, i3, i4]"
            )
            .build()
        )

    def test_pdm_and_parallelism(self, nest):
        pdm = PseudoDistanceMatrix.from_loop_nest(nest)
        assert pdm.rank == 1
        assert pdm.depth == 4
        report = analyze_nest(nest)
        # rank-1 PDM in a 4-deep nest: three doall loops plus 2 partitions
        assert report.parallel_loop_count == 3
        assert report.partition_count == 2
        assert report.transform_is_legal()

    def test_soundness_and_semantics(self, nest):
        pdm = PseudoDistanceMatrix.from_loop_nest(nest)
        for distance in realized_distances(nest):
            assert pdm.contains_distance(list(distance))
        report = analyze_nest(nest)
        result = verify_transformation(nest, report, check_executors=())
        assert result.passed

    def test_schedule_parallelism(self, nest):
        report = analyze_nest(nest)
        transformed = TransformedLoopNest.from_report(report)
        stats = schedule_statistics(build_schedule(transformed))
        assert stats["ideal_speedup"] > 8


class TestTriangularSpaces:
    def test_triangular_partitioned_recurrence(self):
        nest = (
            loop_nest("triangular")
            .loop("i1", 1, 10)
            .loop("i2", 1, "i1")
            .statement("A[i1, i2] = A[i1 - 2, i2] + A[i1, i2 - 2] + 1.0")
            .build()
        )
        report = analyze_nest(nest)
        assert report.partition_count == 4
        result = verify_transformation(nest, report, check_executors=("serial",))
        assert result.passed, result.describe()

    def test_triangular_variable_distance(self):
        nest = (
            loop_nest("triangular-variable")
            .loop("i1", -8, 8)
            .loop("i2", "i1 - 4", "i1 + 4")
            .statement("A[i1, i2] = A[-i1 - 2, 2*i1 + i2 + 2] + 1.0")
            .build()
        )
        pdm = PseudoDistanceMatrix.from_loop_nest(nest)
        assert pdm.matrix == [[2, -2]]
        report = analyze_nest(nest)
        result = verify_transformation(nest, report, check_executors=())
        assert result.passed, result.describe()
        for distance in realized_distances(nest):
            assert pdm.contains_distance(list(distance))
