"""Integration tests pinning the paper's headline claims (Sections 3 and 4).

These are the reproduction targets recorded in EXPERIMENTS.md:

* Example 4.1 — variable distances, non-full-rank PDM, Algorithm 1 zeroes one
  column, the remaining block has determinant 2: one ``doall`` loop plus two
  independent partitions, and no dependence crosses a partition (Figure 3).
* Example 4.2 — variable distances, full-rank PDM of determinant 4: four
  independent partitions (Figure 5).
* In both cases the transformation is legal (Theorem 1 / Theorem 2) and the
  transformed loop computes exactly the same result as the original.
"""

import pytest

from repro.codegen.schedule import build_schedule, schedule_statistics
from repro.codegen.transformed_nest import TransformedLoopNest
from repro.core.pipeline import analyze_nest
from repro.isdg.build import build_isdg
from repro.isdg.partitions import cross_partition_edges, partition_labels_of_iterations
from repro.runtime.simulator import simulate_schedule
from repro.runtime.verification import verify_transformation
from repro.workloads.paper_examples import example_4_1, example_4_2


class TestExample41Claims:
    def test_full_claim_chain(self, ex41_small, ex41_report):
        report = ex41_report
        # 1. variable distances, rank-deficient PDM
        assert report.pdm.rank == 1 < ex41_small.depth
        # 2. Algorithm 1 creates a zero column -> one doall loop
        assert report.parallel_loop_count == 1
        # 3. remaining block determinant 2 -> 2 partitions
        assert report.partition_count == 2
        # 4. legality
        assert report.transform_is_legal()

    def test_partition_separation_figure3(self, ex41_small, ex41_report):
        isdg = build_isdg(ex41_small)
        transformed = TransformedLoopNest.from_report(ex41_report)
        labels = partition_labels_of_iterations(isdg, transformed)
        assert cross_partition_edges(isdg, labels) == []
        assert len(set(labels.values())) == 2

    def test_semantics_preserved(self, ex41_small, ex41_report):
        result = verify_transformation(ex41_small, ex41_report)
        assert result.passed, result.describe()

    def test_parallelism_grows_linearly_with_n(self):
        small = analyze_nest(example_4_1(4))
        large = analyze_nest(example_4_1(10))
        speedup_small = schedule_statistics(
            build_schedule(TransformedLoopNest.from_report(small))
        )["ideal_speedup"]
        speedup_large = schedule_statistics(
            build_schedule(TransformedLoopNest.from_report(large))
        )["ideal_speedup"]
        assert speedup_large > speedup_small > 1.0


class TestExample42Claims:
    def test_full_claim_chain(self, ex42_small, ex42_report):
        report = ex42_report
        assert report.pdm.is_full_rank
        assert report.pdm.determinant() == 4
        assert report.partition_count == 4
        assert report.transform_is_legal()

    def test_partition_separation_figure5(self, ex42_small, ex42_report):
        isdg = build_isdg(ex42_small)
        transformed = TransformedLoopNest.from_report(ex42_report)
        labels = partition_labels_of_iterations(isdg, transformed)
        assert cross_partition_edges(isdg, labels) == []
        assert len(set(labels.values())) == 4

    def test_semantics_preserved(self, ex42_small, ex42_report):
        result = verify_transformation(ex42_small, ex42_report)
        assert result.passed, result.describe()

    def test_four_processor_speedup(self, ex42_report):
        chunks = build_schedule(TransformedLoopNest.from_report(ex42_report))
        sim = simulate_schedule(chunks, num_processors=4)
        assert sim.speedup > 3.0

    def test_det_parallelism_claim(self):
        # "det(S) parallel iterations": the number of chunks equals det(PDM)
        report = analyze_nest(example_4_2(8))
        chunks = build_schedule(TransformedLoopNest.from_report(report))
        assert len(chunks) == report.pdm.determinant()
