"""Tests for repro.diophantine (single equations and systems)."""

import pytest

from repro.diophantine.linear_system import (
    has_integer_solution,
    solve_column_system,
    solve_row_system,
)
from repro.diophantine.single_equation import solve_single_equation
from repro.exceptions import InconsistentSystemError, ShapeError
from repro.intlin.matrix import vec_mat_mul


class TestSingleEquation:
    def test_solvable(self):
        sol = solve_single_equation([4, 6], 10)
        assert sol.consistent
        assert 4 * sol.particular[0] + 6 * sol.particular[1] == 10
        assert sol.gcd == 2

    def test_unsolvable(self):
        sol = solve_single_equation([4, 6], 7)
        assert not sol.consistent

    def test_zero_coefficients(self):
        assert solve_single_equation([0, 0], 0).consistent
        assert not solve_single_equation([0, 0], 3).consistent

    def test_homogeneous_basis_spans_solutions(self):
        sol = solve_single_equation([3, 5], 1)
        for coeffs in ([0], [1], [-2], [5]):
            x = sol.sample(coeffs)
            assert 3 * x[0] + 5 * x[1] == 1

    def test_sample_validates_length(self):
        sol = solve_single_equation([3, 5], 1)
        with pytest.raises(ValueError):
            sol.sample([1, 2, 3])

    def test_sample_on_inconsistent(self):
        sol = solve_single_equation([2, 4], 3)
        with pytest.raises(ValueError):
            sol.sample([0])


class TestRowSystem:
    def test_paper_style_system(self):
        # x @ A = c with a 4x2 matrix (two unknown index vectors, 2-D array)
        matrix = [[1, 0], [0, 1], [1, 0], [2, 1]]
        constant = [3, 5]
        sol = solve_row_system(matrix, constant)
        assert sol.consistent
        assert vec_mat_mul(sol.particular, matrix) == constant
        for row in sol.homogeneous_basis:
            assert vec_mat_mul(row, matrix) == [0, 0]
        assert sol.rank + sol.n_free == 4

    def test_all_general_solutions_satisfy_system(self):
        matrix = [[2, 1], [0, 3], [1, 1]]
        constant = [4, 5]
        sol = solve_row_system(matrix, constant)
        assert sol.consistent
        for coeffs in ([0], [1], [-3]):
            x = sol.sample(coeffs + [0] * (sol.n_free - 1))
            assert vec_mat_mul(x, matrix) == constant

    def test_inconsistent_gcd(self):
        # 2*x = 3 has no integer solution
        sol = solve_row_system([[2]], [3])
        assert not sol.consistent
        assert sol.particular is None

    def test_inconsistent_rank(self):
        # x * (1, 1) = (1, 2): impossible since both columns equal
        sol = solve_row_system([[1, 1]], [1, 2])
        assert not sol.consistent

    def test_sample_raises_when_inconsistent(self):
        sol = solve_row_system([[2]], [3])
        with pytest.raises(InconsistentSystemError):
            sol.sample([])

    def test_constant_length_validation(self):
        with pytest.raises(ShapeError):
            solve_row_system([[1, 2]], [1, 2, 3])

    def test_brute_force_equivalence(self):
        # The general solution must enumerate exactly the brute-force solution set.
        matrix = [[2, 0], [1, 1], [0, 3]]
        constant = [4, 3]
        sol = solve_row_system(matrix, constant)
        assert sol.consistent
        brute = {
            (x0, x1, x2)
            for x0 in range(-6, 7)
            for x1 in range(-6, 7)
            for x2 in range(-6, 7)
            if vec_mat_mul([x0, x1, x2], matrix) == constant
        }
        generated = set()
        for t in range(-8, 9):
            x = sol.sample([t] + [0] * (sol.n_free - 1)) if sol.n_free else sol.particular
            generated.add(tuple(x))
        # one free parameter expected here
        assert sol.n_free == 1
        assert brute <= generated

    def test_has_integer_solution_helper(self):
        assert has_integer_solution([[2], [3]], [1])
        assert not has_integer_solution([[2], [4]], [1])


class TestColumnSystem:
    def test_column_form(self):
        # A x = c  with A = [[1, 2], [3, 4]], c = (5, 11) -> x = (1, 2)
        sol = solve_column_system([[1, 2], [3, 4]], [5, 11])
        assert sol.consistent
        assert sol.particular == [1, 2]
        assert sol.n_free == 0
