"""Round-trip properties of the integer decompositions on seeded random input.

Complementary to the hypothesis suite in ``test_properties_intlin.py``:
here the matrices come from a seeded NumPy RNG (fully reproducible, no
shrinking) and the checks are *reconstruction* identities —

* Hermite: ``U @ M == full`` and ``M == U^{-1} @ full`` with ``|det U| = 1``;
* Smith:   ``L @ M @ R == D`` and ``M == L^{-1} @ D @ R^{-1}`` with
  ``|det L| = |det R| = 1`` and the divisibility chain ``d1 | d2 | ...``;
* column echelon: ``M @ T == E`` with ``|det T| = 1``.

Exact integer arithmetic throughout — any drift is a hard failure.
"""

import numpy as np
import pytest

from repro.intlin.hermite import (
    column_echelon,
    hermite_normal_form,
    is_hermite_normal_form,
)
from repro.intlin.matrix import (
    determinant,
    is_unimodular,
    mat_mul,
    unimodular_inverse,
)
from repro.intlin.smith import smith_normal_form

SEEDS = list(range(25))


def _random_matrix(seed: int):
    """A seeded random integer matrix with small entries (1-5 rows/cols)."""
    rng = np.random.default_rng(seed)
    rows = int(rng.integers(1, 6))
    cols = int(rng.integers(1, 6))
    mat = rng.integers(-9, 10, size=(rows, cols))
    return [[int(v) for v in row] for row in mat]


def _unimodular(mat) -> bool:
    return is_unimodular(mat) and abs(determinant(mat)) == 1


class TestHermiteRoundTrip:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_transform_reconstructs_input(self, seed):
        matrix = _random_matrix(seed)
        result = hermite_normal_form(matrix)
        assert _unimodular(result.transform)
        # forward: U @ M == full reduced matrix
        assert mat_mul(result.transform, matrix) == result.full
        # round trip: M == U^{-1} @ full
        inverse = unimodular_inverse(result.transform)
        assert mat_mul(inverse, result.full) == matrix

    @pytest.mark.parametrize("seed", SEEDS)
    def test_hermite_rows_are_canonical(self, seed):
        result = hermite_normal_form(_random_matrix(seed))
        assert result.hermite == result.full[: result.rank]
        for row in result.full[result.rank:]:
            assert all(v == 0 for v in row)
        if result.hermite:
            assert is_hermite_normal_form(result.hermite)


class TestSmithRoundTrip:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_decomposition_reconstructs_input(self, seed):
        matrix = _random_matrix(seed)
        result = smith_normal_form(matrix)
        assert _unimodular(result.left)
        assert _unimodular(result.right)
        # forward: L @ M @ R == D
        assert mat_mul(mat_mul(result.left, matrix), result.right) == result.diagonal
        # round trip: M == L^{-1} @ D @ R^{-1}
        left_inv = unimodular_inverse(result.left)
        right_inv = unimodular_inverse(result.right)
        assert mat_mul(mat_mul(left_inv, result.diagonal), right_inv) == matrix

    @pytest.mark.parametrize("seed", SEEDS)
    def test_invariant_factor_chain(self, seed):
        result = smith_normal_form(_random_matrix(seed))
        factors = result.invariant_factors
        assert all(d > 0 for d in factors)
        for smaller, larger in zip(factors, factors[1:]):
            assert larger % smaller == 0
        # the diagonal is zero off the pivot positions
        for i, row in enumerate(result.diagonal):
            for j, value in enumerate(row):
                if i != j:
                    assert value == 0


class TestColumnEchelonRoundTrip:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_transform_reconstructs_input(self, seed):
        matrix = _random_matrix(seed)
        result = column_echelon(matrix)
        assert _unimodular(result.transform)
        assert mat_mul(matrix, result.transform) == result.echelon
        inverse = unimodular_inverse(result.transform)
        assert mat_mul(result.echelon, inverse) == matrix
