"""Tests for repro.intlin.gcd."""

import pytest

from repro.exceptions import ShapeError
from repro.intlin.gcd import content, extended_gcd, extended_gcd_list, gcd, gcd_list, lcm


class TestGcd:
    def test_basic_values(self):
        assert gcd(12, 18) == 6
        assert gcd(7, 13) == 1
        assert gcd(0, 5) == 5
        assert gcd(5, 0) == 5

    def test_zero_zero(self):
        assert gcd(0, 0) == 0

    def test_negative_arguments(self):
        assert gcd(-12, 18) == 6
        assert gcd(12, -18) == 6
        assert gcd(-12, -18) == 6

    def test_rejects_non_integers(self):
        with pytest.raises(ShapeError):
            gcd(1.5, 2)
        with pytest.raises(ShapeError):
            gcd(True, 2)

    def test_accepts_integral_float(self):
        assert gcd(4.0, 6) == 2


class TestLcm:
    def test_basic(self):
        assert lcm(4, 6) == 12
        assert lcm(3, 7) == 21

    def test_zero(self):
        assert lcm(0, 5) == 0
        assert lcm(5, 0) == 0

    def test_negative(self):
        assert lcm(-4, 6) == 12


class TestExtendedGcd:
    @pytest.mark.parametrize(
        "a,b",
        [(12, 18), (7, 13), (0, 5), (5, 0), (0, 0), (-12, 18), (12, -18), (-7, -13), (240, 46)],
    )
    def test_bezout_identity(self, a, b):
        g, x, y = extended_gcd(a, b)
        assert g == gcd(a, b)
        assert a * x + b * y == g

    def test_result_gcd_nonnegative(self):
        g, _, _ = extended_gcd(-4, -6)
        assert g == 2


class TestGcdList:
    def test_empty(self):
        assert gcd_list([]) == 0

    def test_single(self):
        assert gcd_list([-6]) == 6

    def test_many(self):
        assert gcd_list([12, 18, 30]) == 6
        assert gcd_list([4, 9]) == 1
        assert gcd_list([0, 0, 0]) == 0

    def test_short_circuit_on_one(self):
        assert gcd_list([3, 5, 1000000]) == 1

    def test_content_alias(self):
        assert content([8, 12, 20]) == 4


class TestExtendedGcdList:
    @pytest.mark.parametrize(
        "values",
        [[12, 18, 30], [4, 9], [0, 0, 7], [-6, 10, 15], [5], [0]],
    )
    def test_combination_equals_gcd(self, values):
        g, coeffs = extended_gcd_list(values)
        assert g == gcd_list(values)
        assert sum(c * v for c, v in zip(coeffs, values)) == g

    def test_empty(self):
        g, coeffs = extended_gcd_list([])
        assert g == 0
        assert coeffs == []
