"""Tests for repro.intlin.matrix."""

import numpy as np
import pytest

from repro.exceptions import NotUnimodularError, ShapeError
from repro.intlin.matrix import (
    add_multiple_of_column,
    add_multiple_of_row,
    compare_lex,
    determinant,
    identity_matrix,
    is_integer_matrix,
    is_lex_negative,
    is_lex_positive,
    is_unimodular,
    is_zero_matrix,
    is_zero_vector,
    leading_index,
    mat_add,
    mat_copy,
    mat_equal,
    mat_hstack,
    mat_mul,
    mat_neg,
    mat_scale,
    mat_shape,
    mat_sub,
    mat_transpose,
    mat_vec_mul,
    mat_vstack,
    negate_column,
    negate_row,
    permutation_matrix,
    swap_columns,
    swap_rows,
    unimodular_inverse,
    vec_mat_mul,
    zero_matrix,
)


class TestConstruction:
    def test_identity(self):
        assert identity_matrix(3) == [[1, 0, 0], [0, 1, 0], [0, 0, 1]]
        assert identity_matrix(0) == []

    def test_identity_negative_dimension(self):
        with pytest.raises(ShapeError):
            identity_matrix(-1)

    def test_zero_matrix(self):
        assert zero_matrix(2, 3) == [[0, 0, 0], [0, 0, 0]]

    def test_copy_from_numpy(self):
        array = np.array([[1, 2], [3, 4]])
        assert mat_copy(array) == [[1, 2], [3, 4]]

    def test_copy_is_deep(self):
        original = [[1, 2], [3, 4]]
        clone = mat_copy(original)
        clone[0][0] = 99
        assert original[0][0] == 1

    def test_shape(self):
        assert mat_shape([[1, 2, 3]]) == (1, 3)
        assert mat_shape([]) == (0, 0)

    def test_ragged_rejected(self):
        with pytest.raises(ShapeError):
            mat_copy([[1, 2], [3]])

    def test_is_integer_matrix(self):
        assert is_integer_matrix([[1, 2], [3, 4]])
        assert not is_integer_matrix([[1.5]])


class TestArithmetic:
    def test_matmul(self):
        a = [[1, 2], [3, 4]]
        b = [[5, 6], [7, 8]]
        assert mat_mul(a, b) == [[19, 22], [43, 50]]

    def test_matmul_shape_mismatch(self):
        with pytest.raises(ShapeError):
            mat_mul([[1, 2]], [[1, 2]])

    def test_matmul_matches_numpy(self):
        rng = np.random.default_rng(3)
        a = rng.integers(-5, 6, size=(3, 4)).tolist()
        b = rng.integers(-5, 6, size=(4, 2)).tolist()
        expected = (np.array(a) @ np.array(b)).tolist()
        assert mat_mul(a, b) == expected

    def test_vec_mat_mul_row_convention(self):
        # (1, 2) @ [[1, 1], [1, 0]] = (3, 1)
        assert vec_mat_mul([1, 2], [[1, 1], [1, 0]]) == [3, 1]

    def test_mat_vec_mul_column_convention(self):
        assert mat_vec_mul([[1, 1], [1, 0]], [1, 2]) == [3, 1]

    def test_add_sub_neg_scale(self):
        a = [[1, 2], [3, 4]]
        b = [[1, 1], [1, 1]]
        assert mat_add(a, b) == [[2, 3], [4, 5]]
        assert mat_sub(a, b) == [[0, 1], [2, 3]]
        assert mat_neg(a) == [[-1, -2], [-3, -4]]
        assert mat_scale(a, 3) == [[3, 6], [9, 12]]

    def test_stacking(self):
        a = [[1, 2]]
        b = [[3, 4]]
        assert mat_vstack(a, b) == [[1, 2], [3, 4]]
        assert mat_hstack(a, b) == [[1, 2, 3, 4]]

    def test_transpose(self):
        assert mat_transpose([[1, 2, 3], [4, 5, 6]]) == [[1, 4], [2, 5], [3, 6]]
        assert mat_transpose([]) == []

    def test_equality(self):
        assert mat_equal([[1, 2]], np.array([[1, 2]]))
        assert not mat_equal([[1, 2]], [[1, 3]])


class TestDeterminantUnimodular:
    def test_determinant_known(self):
        assert determinant([[1, 2], [3, 4]]) == -2
        assert determinant([[2, 0], [0, 3]]) == 6
        assert determinant(identity_matrix(4)) == 1

    def test_determinant_singular(self):
        assert determinant([[1, 2], [2, 4]]) == 0

    def test_determinant_matches_numpy(self):
        rng = np.random.default_rng(11)
        for _ in range(10):
            a = rng.integers(-4, 5, size=(4, 4))
            expected = int(round(np.linalg.det(a)))
            assert determinant(a.tolist()) == expected

    def test_determinant_requires_square(self):
        with pytest.raises(ShapeError):
            determinant([[1, 2, 3]])

    def test_is_unimodular(self):
        assert is_unimodular([[1, 1], [1, 0]])
        assert is_unimodular([[1, 5], [0, 1]])
        assert not is_unimodular([[2, 0], [0, 1]])
        assert not is_unimodular([[1, 2, 3]])

    def test_unimodular_inverse_roundtrip(self):
        t = [[1, 1], [1, 0]]
        inv = unimodular_inverse(t)
        assert mat_mul(t, inv) == identity_matrix(2)
        assert mat_mul(inv, t) == identity_matrix(2)

    def test_unimodular_inverse_bigger(self):
        t = [[1, 2, 0], [0, 1, 3], [0, 0, 1]]
        inv = unimodular_inverse(t)
        assert mat_mul(t, inv) == identity_matrix(3)

    def test_unimodular_inverse_rejects_non_unimodular(self):
        with pytest.raises(NotUnimodularError):
            unimodular_inverse([[2, 0], [0, 1]])


class TestElementaryOperations:
    def test_row_operations(self):
        a = [[1, 2], [3, 4]]
        assert swap_rows(a, 0, 1) == [[3, 4], [1, 2]]
        assert add_multiple_of_row(a, 0, 1, 2) == [[1, 2], [5, 8]]
        assert negate_row(a, 0) == [[-1, -2], [3, 4]]

    def test_column_operations(self):
        a = [[1, 2], [3, 4]]
        assert swap_columns(a, 0, 1) == [[2, 1], [4, 3]]
        assert add_multiple_of_column(a, 0, 1, -1) == [[1, 1], [3, 1]]
        assert negate_column(a, 1) == [[1, -2], [3, -4]]

    def test_operations_do_not_mutate(self):
        a = [[1, 2], [3, 4]]
        swap_rows(a, 0, 1)
        add_multiple_of_column(a, 0, 1, 5)
        assert a == [[1, 2], [3, 4]]

    def test_permutation_matrix_row_action(self):
        # new position k takes old position perm[k]
        perm = permutation_matrix([1, 0, 2])
        assert vec_mat_mul([10, 20, 30], perm) == [20, 10, 30]

    def test_permutation_matrix_invalid(self):
        with pytest.raises(ShapeError):
            permutation_matrix([0, 0, 1])


class TestLexicographic:
    def test_leading_index(self):
        assert leading_index([0, 0, 3]) == 2
        assert leading_index([0, 0, 0]) == -1

    def test_zero_predicates(self):
        assert is_zero_vector([0, 0])
        assert not is_zero_vector([0, 1])
        assert is_zero_matrix([[0, 0], [0, 0]])
        assert is_zero_matrix([])

    def test_lex_positive_negative(self):
        assert is_lex_positive([0, 2, -5])
        assert not is_lex_positive([0, -2, 5])
        assert not is_lex_positive([0, 0, 0])
        assert is_lex_negative([0, -1])
        assert not is_lex_negative([0, 0])

    def test_compare_lex(self):
        assert compare_lex([1, 2], [1, 3]) == -1
        assert compare_lex([1, 3], [1, 2]) == 1
        assert compare_lex([1, 2], [1, 2]) == 0

    def test_compare_lex_length_mismatch(self):
        with pytest.raises(ShapeError):
            compare_lex([1], [1, 2])
