"""Tests for repro.intlin.lattice."""

import pytest

from repro.exceptions import ShapeError
from repro.intlin.lattice import Lattice


class TestConstruction:
    def test_trivial_and_full(self):
        trivial = Lattice.trivial(3)
        assert trivial.is_trivial
        assert trivial.rank == 0
        assert trivial.dimension == 3
        full = Lattice.full(2)
        assert full.is_full_rank
        assert full.determinant() == 1

    def test_zero_generators_dropped(self):
        lattice = Lattice([[0, 0], [2, 4]])
        assert lattice.rank == 1

    def test_dimension_required_for_empty(self):
        with pytest.raises(ShapeError):
            Lattice([])

    def test_mismatched_generator_lengths(self):
        with pytest.raises(ShapeError):
            Lattice([[1, 2], [1, 2, 3]])

    def test_canonical_basis(self):
        a = Lattice([[2, -2], [4, -4]])
        b = Lattice([[2, -2]])
        assert a == b
        assert hash(a) == hash(b)

    def test_from_matrix(self):
        lattice = Lattice.from_matrix([[1, 0], [0, 2]])
        assert lattice.determinant() == 2


class TestMembership:
    def test_contains(self):
        lattice = Lattice([[2, 1], [0, 2]])
        assert lattice.contains([2, 1])
        assert lattice.contains([0, 2])
        assert lattice.contains([2, 3])   # (2,1)+(0,2)
        assert lattice.contains([4, 2])
        assert lattice.contains([0, 0])
        assert not lattice.contains([1, 0])
        assert not lattice.contains([2, 2])

    def test_contains_operator(self):
        lattice = Lattice([[3, 0]])
        assert [6, 0] in lattice
        assert [4, 0] not in lattice

    def test_coordinates_roundtrip(self):
        lattice = Lattice([[2, 1], [0, 2]])
        coords = lattice.coordinates([4, 4])
        assert coords is not None
        rebuilt = [0, 0]
        for c, row in zip(coords, lattice.basis):
            rebuilt = [r + c * b for r, b in zip(rebuilt, row)]
        assert rebuilt == [4, 4]

    def test_coordinates_none_for_outside(self):
        lattice = Lattice([[2, 0]])
        assert lattice.coordinates([1, 0]) is None
        assert lattice.coordinates([2, 1]) is None

    def test_wrong_dimension_raises(self):
        lattice = Lattice([[1, 0]])
        with pytest.raises(ShapeError):
            lattice.contains([1, 0, 0])


class TestResidue:
    def test_residue_ranges(self):
        lattice = Lattice([[2, 1], [0, 2]])
        labels = {lattice.residue([x, y]) for x in range(-6, 7) for y in range(-6, 7)}
        assert len(labels) == 4  # det = 4 cosets
        for label in labels:
            assert 0 <= label[0] < 2
            assert 0 <= label[1] < 2

    def test_residue_constant_on_cosets(self):
        lattice = Lattice([[2, -2]])
        base = lattice.residue([5, 3])
        assert lattice.residue([5 + 2, 3 - 2]) == base
        assert lattice.residue([5 + 4, 3 - 4]) == base
        assert lattice.residue([5 + 1, 3]) != base

    def test_difference_in_lattice_iff_same_residue(self):
        lattice = Lattice([[2, 1], [0, 3]])
        vectors = [(x, y) for x in range(-4, 5) for y in range(-4, 5)]
        for a in vectors[:20]:
            for b in vectors[:20]:
                diff = [a[0] - b[0], a[1] - b[1]]
                same = lattice.residue(list(a)) == lattice.residue(list(b))
                assert same == lattice.contains(diff)


class TestAlgebra:
    def test_sum(self):
        a = Lattice([[2, 0]])
        b = Lattice([[0, 2]])
        s = a.sum(b)
        assert s.determinant() == 4
        assert s.contains([2, 2])

    def test_intersection(self):
        a = Lattice([[2, 0], [0, 1]])
        b = Lattice([[1, 0], [0, 3]])
        inter = a.intersection(b)
        assert inter.contains([2, 0])
        assert inter.contains([0, 3])
        assert not inter.contains([1, 0])
        assert not inter.contains([0, 1])
        assert inter.determinant() == 6

    def test_intersection_with_trivial(self):
        a = Lattice([[1, 0]])
        assert a.intersection(Lattice.trivial(2)).is_trivial

    def test_sublattice(self):
        small = Lattice([[4, 0], [0, 4]])
        big = Lattice([[2, 0], [0, 2]])
        assert small.is_sublattice_of(big)
        assert not big.is_sublattice_of(small)

    def test_transform(self):
        lattice = Lattice([[2, -2]])
        transformed = lattice.transform([[1, 1], [1, 0]])
        assert transformed.contains([0, 2])
        assert transformed.rank == 1

    def test_scaled_and_content(self):
        lattice = Lattice([[1, 2]])
        scaled = lattice.scaled(3)
        assert scaled.contains([3, 6])
        assert not scaled.contains([1, 2])
        assert scaled.content() == 3
        assert Lattice.trivial(2).content() == 0

    def test_zero_coordinates(self):
        lattice = Lattice([[0, 2], [0, 0]], dimension=2)
        assert lattice.zero_coordinates() == [0]
        assert Lattice.trivial(2).zero_coordinates() == [0, 1]

    def test_enumerate_vectors(self):
        lattice = Lattice([[2, 0], [0, 3]])
        vectors = set(tuple(v) for v in lattice.enumerate_vectors(1))
        assert (0, 0) in vectors
        assert (2, 3) in vectors
        assert (-2, 3) in vectors
        assert len(vectors) == 9

    def test_incompatible_dimensions(self):
        with pytest.raises(ShapeError):
            Lattice([[1, 0]]).sum(Lattice([[1, 0, 0]]))
