"""Tests for repro.intlin.fourier_motzkin."""

from fractions import Fraction

import pytest

from repro.exceptions import BoundsError
from repro.intlin.fourier_motzkin import (
    BoundExpression,
    InequalitySystem,
    LinearInequality,
    bounds_for_variable,
    fourier_motzkin_eliminate,
    loop_bounds_from_inequalities,
)


def _box_system(bounds):
    """InequalitySystem for a rectangular box given [(lo, hi), ...]."""
    system = InequalitySystem(len(bounds))
    for var, (lo, hi) in enumerate(bounds):
        system.add_lower(var, lo)
        system.add_upper(var, hi)
    return system


class TestLinearInequality:
    def test_create_and_evaluate(self):
        ineq = LinearInequality.create([1, -2], 3)  # x0 - 2*x1 <= 3
        assert ineq.evaluate([3, 0])
        assert ineq.evaluate([3, 1])
        assert not ineq.evaluate([4, 0])

    def test_bounds_constructors(self):
        lower = LinearInequality.lower_bound(2, 0, -5)  # x0 >= -5
        upper = LinearInequality.upper_bound(2, 1, 7)   # x1 <= 7
        assert lower.evaluate([-5, 0])
        assert not lower.evaluate([-6, 0])
        assert upper.evaluate([0, 7])
        assert not upper.evaluate([0, 8])

    def test_trivial_predicates(self):
        assert LinearInequality.create([0, 0], 1).is_trivially_true()
        assert LinearInequality.create([0, 0], -1).is_trivially_false()
        assert not LinearInequality.create([1, 0], -1).is_trivially_false()

    def test_substitute_row_transform(self):
        # original constraint: i0 <= 4; transform j = i @ T with T = [[1,1],[1,0]]
        # inverse Tinv = [[0,1],[1,-1]]; i0 = j1 (second new var)
        ineq = LinearInequality.create([1, 0], 4)
        new = ineq.substitute_row_transform([[0, 1], [1, -1]])
        assert new.coefficients == (Fraction(0), Fraction(1))
        assert new.constant == 4


class TestElimination:
    def test_projection_of_triangle(self):
        # x0 >= 0, x1 >= 0, x0 + x1 <= 4 : projecting out x1 gives 0 <= x0 <= 4
        system = InequalitySystem(2)
        system.add_lower(0, 0)
        system.add_lower(1, 0)
        system.add(LinearInequality.create([1, 1], 4))
        remaining = fourier_motzkin_eliminate(list(system), 1)
        for ineq in remaining:
            assert ineq.coefficients[1] == 0
        # x0 = 4 must still be feasible, x0 = 5 must not
        assert all(ineq.evaluate([4, 0]) for ineq in remaining)
        assert not all(ineq.evaluate([5, 0]) for ineq in remaining)

    def test_projection_is_exact_for_box(self):
        system = _box_system([(-3, 3), (-2, 5)])
        remaining = fourier_motzkin_eliminate(list(system), 1)
        assert all(ineq.evaluate([x, 0]) for x in range(-3, 4) for ineq in remaining)
        assert not all(ineq.evaluate([-4, 0]) for ineq in remaining)
        assert not all(ineq.evaluate([4, 0]) for ineq in remaining)


class TestBoundsExtraction:
    def test_box_bounds(self):
        system = _box_system([(-3, 3), (-2, 5)])
        bounds = loop_bounds_from_inequalities(system)
        assert bounds[0].lower_value([]) == -3
        assert bounds[0].upper_value([]) == 3
        assert bounds[1].lower_value([0]) == -2
        assert bounds[1].upper_value([0]) == 5

    def test_triangle_bounds_depend_on_outer(self):
        # 0 <= x0 <= 4, 0 <= x1 <= x0
        system = InequalitySystem(2)
        system.add_lower(0, 0)
        system.add_upper(0, 4)
        system.add_lower(1, 0)
        system.add(LinearInequality.create([-1, 1], 0))  # x1 - x0 <= 0
        bounds = loop_bounds_from_inequalities(system)
        assert bounds[1].lower_value([2]) == 0
        assert bounds[1].upper_value([2]) == 2
        assert bounds[1].upper_value([0]) == 0

    def test_scanning_matches_brute_force(self):
        # skewed region: -5 <= x0 <= 5, -5 <= x0 + x1 <= 5
        system = InequalitySystem(2)
        system.add_lower(0, -5)
        system.add_upper(0, 5)
        system.add(LinearInequality.create([1, 1], 5))
        system.add(LinearInequality.create([-1, -1], 5))
        bounds = loop_bounds_from_inequalities(system)
        scanned = set()
        for x0 in range(bounds[0].lower_value([]), bounds[0].upper_value([]) + 1):
            lo = bounds[1].lower_value([x0])
            hi = bounds[1].upper_value([x0])
            for x1 in range(lo, hi + 1):
                scanned.add((x0, x1))
        brute = {
            (x0, x1)
            for x0 in range(-10, 11)
            for x1 in range(-20, 21)
            if -5 <= x0 <= 5 and -5 <= x0 + x1 <= 5
        }
        assert scanned == brute

    def test_infeasible_system_raises(self):
        system = InequalitySystem(1)
        system.add_lower(0, 5)
        system.add_upper(0, 3)
        with pytest.raises(BoundsError):
            loop_bounds_from_inequalities(system)

    def test_bounds_for_variable_rejects_uneliminated(self):
        ineqs = [LinearInequality.create([1, 1], 4)]
        with pytest.raises(BoundsError):
            bounds_for_variable(ineqs, 0)


class TestBoundExpression:
    def test_evaluate_and_rounding(self):
        expr = BoundExpression((Fraction(1, 2),), Fraction(3, 2))
        assert expr.evaluate_exact([3]) == Fraction(3)
        assert expr.evaluate_floor([2]) == 2
        assert expr.evaluate_ceil([2]) == 3

    def test_as_source_integral(self):
        expr = BoundExpression((Fraction(2),), Fraction(-1))
        source = expr.as_source(["j1"], "floor")
        assert eval(source, {"j1": 3}) == 5

    def test_as_source_fractional_uses_rounding(self):
        import math

        expr = BoundExpression((Fraction(1, 2),), Fraction(0))
        source = expr.as_source(["j1"], "ceil")
        assert "ceil" in source
        assert eval(source, {"math": math, "j1": 3}) == 2
