"""Tests for repro.intlin.echelon."""

import numpy as np
import pytest

from repro.intlin.echelon import (
    is_echelon,
    is_echelon_lex_positive,
    matrix_rank,
    row_echelon,
    row_levels,
)
from repro.intlin.matrix import is_unimodular, mat_mul


class TestRowEchelon:
    @pytest.mark.parametrize(
        "matrix",
        [
            [[2, 4], [3, 6]],
            [[1, 2, 3], [4, 5, 6], [7, 8, 9]],
            [[0, 0], [0, 0]],
            [[5]],
            [[2, -3, 1], [4, 1, -2], [0, 7, 7], [6, -2, -1]],
            [[1, 0, 0, 2], [0, 3, 0, 1]],
        ],
    )
    def test_transform_reproduces_echelon(self, matrix):
        result = row_echelon(matrix)
        assert is_unimodular(result.transform)
        assert mat_mul(result.transform, matrix) == result.echelon
        assert is_echelon(result.echelon)

    def test_rank_matches_numpy(self):
        rng = np.random.default_rng(5)
        for _ in range(15):
            a = rng.integers(-3, 4, size=(4, 5))
            assert row_echelon(a.tolist()).rank == np.linalg.matrix_rank(a)

    def test_pivot_columns_increasing(self):
        result = row_echelon([[0, 2, 1], [0, 4, 3], [1, 1, 1]])
        assert result.pivot_columns == sorted(result.pivot_columns)
        assert len(result.pivot_columns) == result.rank

    def test_positive_pivots_option(self):
        result = row_echelon([[-2, 4], [0, -3]], positive_pivots=True)
        for row, col in zip(result.echelon, result.pivot_columns):
            assert row[col] > 0
        assert mat_mul(result.transform, [[-2, 4], [0, -3]]) == result.echelon

    def test_zero_matrix(self):
        result = row_echelon([[0, 0, 0]])
        assert result.rank == 0
        assert result.echelon == [[0, 0, 0]]

    def test_nonzero_rows_property(self):
        result = row_echelon([[2, 4], [1, 2]])
        assert len(result.nonzero_rows) == result.rank == 1


class TestEchelonPredicates:
    def test_is_echelon_true(self):
        assert is_echelon([[1, 2, 3], [0, 4, 5], [0, 0, 6]])
        assert is_echelon([[0, 1, 2], [0, 0, 3], [0, 0, 0]])
        assert is_echelon([])

    def test_is_echelon_false(self):
        assert not is_echelon([[0, 1], [1, 0]])  # levels decrease
        assert not is_echelon([[1, 1], [1, 0]])  # same level
        assert not is_echelon([[0, 0], [1, 0]])  # zero row before nonzero

    def test_is_echelon_lex_positive(self):
        assert is_echelon_lex_positive([[1, -5], [0, 3]])
        assert not is_echelon_lex_positive([[-1, 5], [0, 3]])
        assert not is_echelon_lex_positive([[1, 5], [3, 0]])

    def test_zero_rows_allowed_at_bottom(self):
        assert is_echelon_lex_positive([[1, 2], [0, 0]])

    def test_row_levels(self):
        assert row_levels([[0, 1], [2, 0], [0, 0]]) == [1, 0, -1]


class TestRank:
    def test_rank_simple(self):
        assert matrix_rank([[1, 2], [2, 4]]) == 1
        assert matrix_rank([[1, 0], [0, 1]]) == 2
        assert matrix_rank([[0, 0]]) == 0
