"""Property-based tests (hypothesis) for the integer linear algebra core."""

from hypothesis import given, settings, strategies as st

from repro.diophantine.linear_system import solve_row_system
from repro.intlin.echelon import is_echelon, row_echelon
from repro.intlin.gcd import extended_gcd, gcd
from repro.intlin.hermite import hermite_normal_form, left_kernel_basis
from repro.intlin.lattice import Lattice
from repro.intlin.matrix import (
    determinant,
    is_unimodular,
    mat_mul,
    unimodular_inverse,
    vec_mat_mul,
)
from repro.intlin.smith import smith_normal_form

small_int = st.integers(min_value=-9, max_value=9)


def matrices(max_rows=4, max_cols=4):
    return st.integers(min_value=1, max_value=max_rows).flatmap(
        lambda r: st.integers(min_value=1, max_value=max_cols).flatmap(
            lambda c: st.lists(
                st.lists(small_int, min_size=c, max_size=c), min_size=r, max_size=r
            )
        )
    )


@given(st.integers(-10**6, 10**6), st.integers(-10**6, 10**6))
def test_extended_gcd_bezout(a, b):
    g, x, y = extended_gcd(a, b)
    assert g == gcd(a, b)
    assert a * x + b * y == g
    assert g >= 0


@settings(max_examples=60, deadline=None)
@given(matrices())
def test_row_echelon_invariants(matrix):
    result = row_echelon(matrix)
    assert is_unimodular(result.transform)
    assert mat_mul(result.transform, matrix) == result.echelon
    assert is_echelon(result.echelon)
    assert result.rank <= min(len(matrix), len(matrix[0]))


@settings(max_examples=60, deadline=None)
@given(matrices())
def test_hermite_preserves_lattice_and_shape(matrix):
    result = hermite_normal_form(matrix)
    cols = len(matrix[0])
    original = Lattice(matrix, dimension=cols)
    reduced = Lattice(result.hermite, dimension=cols)
    assert original == reduced
    # every original row must be inside the HNF lattice
    for row in matrix:
        assert reduced.contains(row)


@settings(max_examples=60, deadline=None)
@given(matrices())
def test_left_kernel_rows_annihilate(matrix):
    cols = len(matrix[0])
    for row in left_kernel_basis(matrix):
        assert vec_mat_mul(row, matrix) == [0] * cols


@settings(max_examples=40, deadline=None)
@given(matrices(max_rows=3, max_cols=3))
def test_smith_decomposition_invariants(matrix):
    result = smith_normal_form(matrix)
    assert is_unimodular(result.left)
    assert is_unimodular(result.right)
    assert mat_mul(mat_mul(result.left, matrix), result.right) == result.diagonal
    factors = result.invariant_factors
    assert all(f > 0 for f in factors)
    for a, b in zip(factors, factors[1:]):
        assert b % a == 0


@settings(max_examples=50, deadline=None)
@given(matrices(max_rows=3, max_cols=3), st.lists(small_int, min_size=3, max_size=3))
def test_diophantine_solutions_satisfy_system(matrix, coeffs):
    cols = len(matrix[0])
    # build a right-hand side that is guaranteed solvable: c = x_true @ A
    x_true = coeffs[: len(matrix)]
    constant = vec_mat_mul(x_true, matrix)
    sol = solve_row_system(matrix, constant)
    assert sol.consistent
    assert vec_mat_mul(sol.particular, matrix) == constant
    for row in sol.homogeneous_basis:
        assert vec_mat_mul(row, matrix) == [0] * cols


def _unimodular_from_operations(operations):
    """Build a unimodular 3x3 matrix as a product of elementary operations."""
    matrix = [[1 if i == j else 0 for j in range(3)] for i in range(3)]
    for kind, a, b, factor in operations:
        if kind == 0 and a != b:  # add multiple of row a to row b
            matrix[b] = [x + factor * y for x, y in zip(matrix[b], matrix[a])]
        elif kind == 1 and a != b:  # swap rows
            matrix[a], matrix[b] = matrix[b], matrix[a]
        else:  # negate row a
            matrix[a] = [-x for x in matrix[a]]
    return matrix


elementary_ops = st.lists(
    st.tuples(
        st.integers(0, 2),
        st.integers(0, 2),
        st.integers(0, 2),
        st.integers(-3, 3),
    ),
    min_size=0,
    max_size=8,
)


@settings(max_examples=60, deadline=None)
@given(elementary_ops)
def test_unimodular_inverse_roundtrip(operations):
    matrix = _unimodular_from_operations(operations)
    assert abs(determinant(matrix)) == 1
    inverse = unimodular_inverse(matrix)
    identity = [[1 if i == j else 0 for j in range(3)] for i in range(3)]
    assert mat_mul(matrix, inverse) == identity
    assert mat_mul(inverse, matrix) == identity


@settings(max_examples=50, deadline=None)
@given(matrices(max_rows=3, max_cols=3), st.lists(small_int, min_size=3, max_size=3))
def test_lattice_membership_of_combinations(matrix, coeffs):
    cols = len(matrix[0])
    lattice = Lattice(matrix, dimension=cols)
    combo = vec_mat_mul(coeffs[: len(matrix)], matrix)
    assert lattice.contains(combo)
    residue = lattice.residue(combo)
    assert residue == lattice.residue([0] * cols)
