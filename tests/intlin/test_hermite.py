"""Tests for repro.intlin.hermite (HNF, column echelon, integer kernels)."""

import numpy as np
import pytest

from repro.intlin.hermite import (
    column_echelon,
    hermite_normal_form,
    is_hermite_normal_form,
    left_kernel_basis,
    right_kernel_basis,
)
from repro.intlin.lattice import Lattice
from repro.intlin.matrix import is_unimodular, is_zero_vector, mat_mul, mat_transpose, vec_mat_mul


class TestHermiteNormalForm:
    @pytest.mark.parametrize(
        "matrix",
        [
            [[2, -2]],
            [[2, 1], [0, 2]],
            [[1, -2], [2, 0]],
            [[3, 6, 9], [2, 4, 8], [1, 1, 1]],
            [[4, 0], [0, 6], [2, 2]],
            [[0, 0, 5], [0, 3, 1]],
        ],
    )
    def test_hnf_properties(self, matrix):
        result = hermite_normal_form(matrix)
        assert is_unimodular(result.transform)
        assert mat_mul(result.transform, matrix) == result.full
        assert is_hermite_normal_form(result.hermite) or result.rank == 0
        # zero rows (if any) are at the bottom of the full matrix
        for row in result.full[result.rank:]:
            assert is_zero_vector(row)

    @pytest.mark.parametrize(
        "matrix",
        [
            [[2, -2]],
            [[2, 1], [0, 2]],
            [[1, -2], [2, 0]],
            [[6, 4], [4, 6]],
            [[3, 6, 9], [2, 4, 8], [1, 1, 1]],
        ],
    )
    def test_hnf_preserves_row_lattice(self, matrix):
        result = hermite_normal_form(matrix)
        original = Lattice(matrix, dimension=len(matrix[0]))
        reduced = Lattice(result.hermite, dimension=len(matrix[0]))
        assert original == reduced

    def test_known_hnf_example_41(self):
        # The generators of the paper's Section 4.1 reconstruction.
        result = hermite_normal_form([[2, -2], [4, -4], [2, -2]])
        assert result.hermite == [[2, -2]]

    def test_known_hnf_example_42(self):
        result = hermite_normal_form([[2, 1], [0, 2], [2, 1]])
        assert result.hermite == [[2, 1], [0, 2]]

    def test_above_pivot_reduction(self):
        result = hermite_normal_form([[1, 7], [0, 3]])
        # the entry above the pivot 3 must be reduced into [0, 3)
        assert result.hermite[0][1] in (0, 1, 2)

    def test_is_hermite_normal_form_predicate(self):
        assert is_hermite_normal_form([[2, 1], [0, 2]])
        assert not is_hermite_normal_form([[2, 5], [0, 2]])  # 5 not reduced mod 2... above pivot
        assert not is_hermite_normal_form([[0, 0]])
        assert not is_hermite_normal_form([[-1, 0], [0, 1]])


class TestColumnEchelon:
    def test_column_echelon_transform(self):
        matrix = [[2, 4, 6], [1, 3, 5]]
        result = column_echelon(matrix)
        assert is_unimodular(result.transform)
        assert mat_mul(matrix, result.transform) == result.echelon
        assert result.rank == 2


class TestKernels:
    @pytest.mark.parametrize(
        "matrix",
        [
            [[1, 2], [2, 4]],
            [[1, 0], [0, 1]],
            [[2, 4, 6], [1, 2, 3], [3, 6, 9]],
            [[1], [2], [3]],
        ],
    )
    def test_left_kernel(self, matrix):
        basis = left_kernel_basis(matrix)
        m = len(matrix)
        rank = np.linalg.matrix_rank(np.array(matrix))
        assert len(basis) == m - rank
        for row in basis:
            assert vec_mat_mul(row, matrix) == [0] * len(matrix[0])

    def test_right_kernel(self):
        matrix = [[1, 2, 3]]
        basis = right_kernel_basis(matrix)
        assert len(basis) == 2
        for vec in basis:
            assert sum(m * v for m, v in zip(matrix[0], vec)) == 0

    def test_left_kernel_spans_all_solutions(self):
        # every integer solution of x @ A = 0 must be an integer combination
        # of the returned basis (saturation property).
        matrix = [[2, 4], [1, 2], [3, 6]]
        basis = left_kernel_basis(matrix)
        kernel_lattice = Lattice(basis, dimension=3)
        # brute force small solutions
        for x0 in range(-3, 4):
            for x1 in range(-3, 4):
                for x2 in range(-3, 4):
                    if vec_mat_mul([x0, x1, x2], matrix) == [0, 0]:
                        assert kernel_lattice.contains([x0, x1, x2])

    def test_empty_matrix(self):
        assert left_kernel_basis([]) == []
