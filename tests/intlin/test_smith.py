"""Tests for repro.intlin.smith."""

import numpy as np
import pytest

from repro.intlin.matrix import is_unimodular, mat_mul
from repro.intlin.smith import smith_normal_form


def _is_diagonal(matrix):
    for i, row in enumerate(matrix):
        for j, value in enumerate(row):
            if i != j and value != 0:
                return False
    return True


class TestSmithNormalForm:
    @pytest.mark.parametrize(
        "matrix",
        [
            [[2, 4], [6, 8]],
            [[1, 2, 3], [4, 5, 6], [7, 8, 9]],
            [[2, 0], [0, 3]],
            [[0, 0], [0, 0]],
            [[6, 10], [10, 6]],
            [[1, 2], [3, 4], [5, 6]],
            [[2, 4, 4], [-6, 6, 12], [10, 4, 16]],
        ],
    )
    def test_decomposition(self, matrix):
        result = smith_normal_form(matrix)
        assert is_unimodular(result.left)
        assert is_unimodular(result.right)
        assert mat_mul(mat_mul(result.left, matrix), result.right) == result.diagonal
        assert _is_diagonal(result.diagonal)

    @pytest.mark.parametrize(
        "matrix",
        [
            [[2, 4], [6, 8]],
            [[6, 10], [10, 6]],
            [[2, 4, 4], [-6, 6, 12], [10, 4, 16]],
            [[1, 2, 3], [4, 5, 6], [7, 8, 9]],
        ],
    )
    def test_divisibility_chain(self, matrix):
        result = smith_normal_form(matrix)
        factors = result.invariant_factors
        assert all(f > 0 for f in factors)
        for a, b in zip(factors, factors[1:]):
            assert b % a == 0

    def test_rank_matches_numpy(self):
        rng = np.random.default_rng(2)
        for _ in range(10):
            a = rng.integers(-4, 5, size=(3, 4))
            result = smith_normal_form(a.tolist())
            assert result.rank == np.linalg.matrix_rank(a)

    def test_known_example(self):
        # A classic example: SNF of [[2, 4, 4], [-6, 6, 12], [10, -4, -16]]
        result = smith_normal_form([[2, 4, 4], [-6, 6, 12], [10, -4, -16]])
        assert result.invariant_factors == [2, 6, 12]

    def test_determinant_invariance(self):
        matrix = [[2, 1], [0, 3]]
        result = smith_normal_form(matrix)
        product = 1
        for f in result.invariant_factors:
            product *= f
        assert product == abs(2 * 3)
