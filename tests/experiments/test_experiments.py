"""Tests for the experiment drivers (figures, tables, speedup, Algorithm 1 cost)."""

import pytest

from repro.experiments.algorithm_cost import algorithm1_cost_sweep, random_pdm
from repro.experiments.figures import (
    figure1_unimodular_demo,
    figure2_original_isdg_41,
    figure3_transformed_isdg_41,
    figure4_original_isdg_42,
    figure5_partitioned_isdg_42,
)
from repro.experiments.speedup import speedup_sweep, wallclock_measurement
from repro.experiments.tables import table1_measured_rows, table1_related_work
from repro.workloads.paper_examples import example_4_1, example_4_2


class TestFigures:
    def test_figure1(self):
        result = figure1_unimodular_demo(4)
        assert result.statistics.num_edges > 0
        assert "transform" in result.extra
        assert "Figure 1" in result.describe()

    def test_figure2_variable_distances(self):
        result = figure2_original_isdg_41(6)
        assert result.statistics.num_iterations == 13 * 13
        assert result.statistics.num_edges > 0
        # the figure's defining feature: several distinct (variable) distances
        assert result.statistics.num_distinct_distances > 1

    def test_figure3_two_partitions_no_crossing(self):
        result = figure3_transformed_isdg_41(6)
        assert result.extra["partitions"] == 2
        assert result.statistics.num_partitions == 2
        assert result.statistics.num_cross_partition_edges == 0

    def test_figure4(self):
        result = figure4_original_isdg_42(6)
        assert result.statistics.num_edges > 0
        assert result.statistics.num_distinct_distances > 1

    def test_figure5_four_partitions_no_crossing(self):
        result = figure5_partitioned_isdg_42(6)
        assert result.extra["partitions"] == 4
        assert result.statistics.num_partitions == 4
        assert result.statistics.num_cross_partition_edges == 0

    def test_renderings_are_text(self):
        for result in (figure2_original_isdg_41(5), figure5_partitioned_isdg_42(5)):
            assert isinstance(result.rendering, str)
            assert len(result.rendering.splitlines()) > 5


class TestTables:
    def test_qualitative_table(self):
        text = table1_related_work()
        assert "pseudo distance matrix" in text
        assert "uniform distance vectors" in text

    def test_measured_table(self):
        measured = table1_measured_rows(5)
        assert "pdm" in measured["aggregates"]
        pdm_stats = measured["aggregates"]["pdm"]
        assert pdm_stats["applicable"] == len(measured["rows"])
        # the PDM method must apply everywhere and find parallelism at least as
        # often as the uniform-distance baselines
        assert pdm_stats["found_parallelism"] >= measured["aggregates"]["unimodular"]["found_parallelism"]
        assert pdm_stats["found_parallelism"] >= measured["aggregates"]["constant-partitioning"]["found_parallelism"]
        assert "workload" in measured["table"]


class TestSpeedup:
    def test_sweep_shapes(self):
        points = speedup_sweep(example_4_1, sizes=(4, 6), workload_name="ex41")
        assert len(points) == 2
        for point in points:
            assert point.partitions == 2
            assert point.parallel_loops == 1
            assert point.ideal_speedup > 1.0
            assert point.simulated_speedup_4 <= 4.0 + 1e-9
            assert point.simulated_speedup_16 >= point.simulated_speedup_4 - 1e-9

    def test_speedup_grows_with_size(self):
        points = speedup_sweep(example_4_1, sizes=(4, 8))
        assert points[1].ideal_speedup > points[0].ideal_speedup

    def test_example_42_partition_speedup(self):
        points = speedup_sweep(example_4_2, sizes=(6,))
        assert points[0].partitions == 4
        # with 4 independent partitions the 4-processor speedup approaches 4
        assert points[0].simulated_speedup_4 > 3.0

    def test_wallclock_measurement_keys(self):
        timings = wallclock_measurement(example_4_1(4), modes=("serial",))
        assert set(timings) == {"original", "serial"}
        assert all(t >= 0.0 for t in timings.values())


class TestAlgorithmCost:
    def test_random_pdm_full_row_rank(self):
        import random

        rng = random.Random(0)
        pdm = random_pdm(4, 3, 9, rng)
        assert len(pdm) == 3

    def test_cost_sweep(self):
        points = algorithm1_cost_sweep(depths=(2, 3), magnitudes=(4,), samples=3, seed=1)
        assert len(points) == 2
        for point in points:
            assert point.mean_column_operations >= 0.0
            assert point.max_column_operations >= point.mean_column_operations
