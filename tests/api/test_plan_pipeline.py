"""The plan-optimization pipeline through the public surface.

Covers the configuration plumbing (``SessionConfig.plan_passes``, CLI
``--plan-passes`` / ``--no-plan-passes``), the session's program LRU
caching the *optimized* plan, the fused batch entry points
(``Session.run_fused``, ``BatchService(fuse=True)``) and the equivalence
guarantee: optimized and raw dispatches produce identical stores.
"""

import pytest

from repro.api import Session, SessionConfig
from repro.cli import build_parser, session_config_from_args
from repro.exceptions import WorkloadError
from repro.plan import DEFAULT_PLAN_PASSES, ExecutionPlan
from repro.service import BatchService, jobs_from_nests
from repro.workloads.paper_examples import example_4_1, example_4_2
from repro.workloads.synthetic import no_dependence_loop


class TestConfig:
    def test_default_pipeline_is_mode_aware(self):
        # Serial dispatch is free, so coalescing (which trades round
        # structure for fewer dispatches) only defaults on in the
        # dispatch-bound modes.
        assert SessionConfig().resolved_plan_passes() == ("tile",)
        for mode in ("threads", "processes", "shared"):
            config = SessionConfig(mode=mode)
            assert config.resolved_plan_passes() == DEFAULT_PLAN_PASSES

    def test_explicit_pipeline_overrides_mode_default(self):
        config = SessionConfig(mode="serial", plan_passes=("coalesce",))
        assert config.resolved_plan_passes() == ("coalesce",)

    def test_normalizes_to_tuple(self):
        config = SessionConfig(plan_passes=["coalesce"])
        assert config.plan_passes == ("coalesce",)

    def test_unknown_pass_rejected_at_config_time(self):
        with pytest.raises(WorkloadError, match="unknown plan pass"):
            SessionConfig(plan_passes=("coalesce", "nope"))

    def test_empty_disables(self):
        with Session(SessionConfig(plan_passes=())) as session:
            assert session._plan_pipeline is None


class TestSessionPipeline:
    def test_program_cache_holds_optimized_plan(self):
        with Session(
            mode="serial", backend="compiled", plan_passes=("coalesce", "tile")
        ) as session:
            optimized = session.run(example_4_1(40))
        with Session(mode="serial", backend="compiled", plan_passes=()) as session:
            raw = session.run(example_4_1(40))
        # Same results, strictly fewer dispatched chunks.
        assert optimized.checksum == raw.checksum
        assert optimized.num_chunks < raw.num_chunks

    def test_verify_passes_with_pipeline(self):
        with Session(mode="serial", backend="vectorized", verify="always") as session:
            result = session.run(example_4_1(32))
        assert result.max_abs_difference == 0.0

    def test_cached_program_reused(self):
        with Session(mode="serial") as session:
            session.run(example_4_1(16))
            entry = next(iter(session._programs.values()))
            session.run(example_4_1(16))
            assert next(iter(session._programs.values()))[1] is entry[1]


class TestRunFused:
    def test_results_in_input_order_and_verified(self):
        sources = [example_4_1(10), example_4_2(12), no_dependence_loop(6)]
        with Session(mode="serial", backend="compiled", verify="always") as session:
            results = session.run_fused(sources)
        assert [result.name for result in results] == [
            source.name for source in sources
        ]
        assert all(result.max_abs_difference == 0.0 for result in results)

    def test_single_source_degrades_to_run(self):
        with Session(mode="serial") as session:
            [fused_result] = session.run_fused([example_4_1(10)])
            plain_result = session.run(example_4_1(10))
        assert fused_result.checksum == plain_result.checksum

    def test_empty_batch(self):
        with Session(mode="serial") as session:
            assert session.run_fused([]) == []

    def test_names_length_mismatch(self):
        with Session(mode="serial") as session:
            with pytest.raises(WorkloadError, match="names has"):
                session.run_fused([example_4_1(6)], names=["a", "b"])


class TestBatchFusion:
    def test_fused_batch_matches_plain(self):
        nests = [example_4_1(10), example_4_2(12), no_dependence_loop(6)]
        jobs = jobs_from_nests(nests, repeat=2)
        with BatchService(mode="serial", backend="compiled") as service:
            plain = service.submit(jobs)
        with BatchService(mode="serial", backend="compiled", fuse=True) as service:
            fused = service.submit(jobs)
        assert [r.checksum for r in fused.results] == [
            r.checksum for r in plain.results
        ]
        assert [r.name for r in fused.results] == [r.name for r in plain.results]

    def test_fuse_window_validated(self):
        with pytest.raises(WorkloadError, match="fuse_window"):
            BatchService(mode="serial", fuse=True, fuse_window=1)

    def test_incompatible_jobs_split_windows(self):
        jobs = jobs_from_nests([example_4_1(8), example_4_2(8)])
        jobs = [jobs[0], jobs[1].__class__(
            name="inner", nest=jobs[1].nest, placement="inner"
        )]
        with BatchService(mode="serial", backend="compiled", fuse=True) as service:
            report = service.submit(jobs)
        assert len(report.results) == 2


class TestCli:
    def _config(self, argv):
        parser = build_parser()
        return session_config_from_args(parser.parse_args(argv))

    def test_default_flags(self):
        config = self._config(["run", "x.loop"])
        assert config.plan_passes is None  # auto: resolved by mode

    def test_plan_passes_flag(self):
        config = self._config(["run", "x.loop", "--plan-passes", "coalesce"])
        assert config.plan_passes == ("coalesce",)

    def test_no_plan_passes_flag(self):
        config = self._config(["run", "x.loop", "--no-plan-passes"])
        assert config.plan_passes == ()

    def test_bad_plan_pass_fails_at_config(self):
        with pytest.raises(WorkloadError, match="unknown plan pass"):
            self._config(["run", "x.loop", "--plan-passes", "bogus"])

    def test_batch_has_fuse_flag(self):
        parser = build_parser()
        args = parser.parse_args(["batch", "x.loop", "--fuse"])
        assert args.fuse is True
