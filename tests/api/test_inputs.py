"""Tests for the uniform input layer (:mod:`repro.api.inputs`)."""

import pathlib

import pytest

from repro.api.inputs import parse_loop_text, resolve_source, resolve_sources
from repro.exceptions import LoopNestError
from repro.loopnest.nest import LoopNest
from repro.service import BatchJob
from repro.workloads.paper_examples import example_4_1
from repro.workloads.suite import workload_suite

LOOP_TEXT = """
name: from-text
loop i1 = -4 .. 4
loop i2 = -4 .. 4
A[i1, i2] = A[-i1 - 2, 2*i1 + i2 + 2] + 1.0
"""

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent.parent / "examples" / "loops"


class TestResolveSource:
    def test_built_nest_passes_through(self):
        nest = example_4_1(4)
        assert resolve_source(nest) is nest

    def test_loop_text(self):
        nest = resolve_source(LOOP_TEXT)
        assert isinstance(nest, LoopNest)
        assert nest.name == "from-text"
        assert nest.depth == 2

    def test_single_line_loop_text_needs_declaration_shape(self):
        nest = resolve_source("loop i1 = 0 .. 3\nA[i1] = A[i1 - 1] + 1.0")
        assert nest.depth == 1

    def test_file_path_string(self):
        nest = resolve_source(str(EXAMPLES_DIR / "example41.loop"))
        assert nest.name == "example-4.1"  # the file's name: line wins

    def test_pathlike(self):
        nest = resolve_source(EXAMPLES_DIR / "example42.loop")
        assert nest.name == "example-4.2"

    def test_workload_factory_with_n(self):
        nest = resolve_source(example_4_1, n=6)
        assert nest.iteration_count() == example_4_1(6).iteration_count()

    def test_object_with_nest_attribute(self):
        case = workload_suite(4)[0]
        assert resolve_source(case) is case.nest
        job = BatchJob(name="job", nest=example_4_1(4))
        assert resolve_source(job) is job.nest

    def test_name_override_for_text(self):
        nest = resolve_source("loop i1 = 0 .. 3\nA[i1] = 1.0", name="renamed")
        assert nest.name == "renamed"

    def test_missing_file_raises_filenotfound(self):
        with pytest.raises(FileNotFoundError):
            resolve_source("/nonexistent/path.loop")

    def test_unresolvable_string_is_an_error(self):
        with pytest.raises(LoopNestError, match="cannot resolve loop source"):
            resolve_source("definitely not a loop")

    def test_unresolvable_type_is_an_error(self):
        with pytest.raises(LoopNestError, match="cannot resolve loop source"):
            resolve_source(12345)

    def test_factory_returning_non_nest_is_an_error(self):
        with pytest.raises(LoopNestError, match="workload factory"):
            resolve_source(lambda: "not a nest")

    def test_resolve_sources_batch(self):
        nests = resolve_sources([example_4_1(4), LOOP_TEXT])
        assert [type(n) for n in nests] == [LoopNest, LoopNest]


class TestParseLoopTextStillExported:
    def test_cli_reexports_parser(self):
        # the CLI keeps its historical import surface
        from repro.cli import parse_loop_file, parse_loop_text  # noqa: F401

        nest = parse_loop_text(LOOP_TEXT)
        assert nest.name == "from-text"
