"""Tests for the :class:`repro.api.Session` façade and its lifecycle.

The acceptance contract of the API redesign: one session serves
analyze → run → map across every execution mode, reusing a single warm
executor (in ``shared`` mode: one worker-pool spin-up for the whole
session) and one analysis cache, and tears shared-memory state down
deterministically on exit.
"""

import glob
import os

import pytest

from repro.api import Session, SessionConfig
from repro.core.cache import AnalysisCache
from repro.exceptions import ExecutionError, WorkloadError
from repro.runtime.arrays import store_for_nest
from repro.runtime.executor import EXECUTION_MODES
from repro.runtime.interpreter import execute_nest
from repro.workloads.paper_examples import example_4_1, example_4_2

needs_dev_shm = pytest.mark.skipif(
    not os.path.isdir("/dev/shm"), reason="segment accounting is checked via /dev/shm"
)


def _segments() -> set:
    return set(glob.glob("/dev/shm/psm_*"))


def _reference_store(nest):
    store = store_for_nest(nest)
    execute_nest(nest, store)
    return store


class TestSessionConfig:
    def test_defaults(self):
        config = SessionConfig()
        assert config.mode == "serial"
        assert config.use_cache is True
        assert config.verify == "never"

    def test_invalid_mode_rejected(self):
        with pytest.raises(WorkloadError, match="execution mode"):
            SessionConfig(mode="warp")

    def test_invalid_placement_rejected(self):
        with pytest.raises(WorkloadError, match="placement"):
            SessionConfig(placement="middle")

    def test_invalid_verify_rejected(self):
        with pytest.raises(WorkloadError, match="verify"):
            SessionConfig(verify="sometimes")

    def test_invalid_counts_rejected(self):
        with pytest.raises(WorkloadError):
            SessionConfig(workers=0)
        with pytest.raises(WorkloadError):
            SessionConfig(cache_size=0)

    def test_keyword_overrides(self):
        session = Session(SessionConfig(mode="threads"), workers=7)
        assert session.config.mode == "threads"
        assert session.config.workers == 7
        session.close()


class TestOneSessionServesEverything:
    @pytest.mark.parametrize("mode", EXECUTION_MODES)
    def test_analyze_run_map_share_one_executor_and_cache(self, mode):
        nest = example_4_1(4)
        reference = _reference_store(nest)
        with Session(mode=mode, backend="compiled", workers=2) as session:
            analysis = session.analyze(nest)
            assert analysis.partitions == 2
            assert not analysis.cache_hit

            first = session.run(example_4_1(4))
            assert reference.identical(first.store)
            assert first.cache_hit  # analysis resolved from the session cache
            executor = session._executor
            assert executor is not None

            results = session.map([example_4_1(4), example_4_2(4)], repeat=2)
            assert len(results) == 4
            assert session._executor is executor  # never rebuilt
            for result in results:
                assert result.fallback is None

            stats = session.stats()
            assert stats.executor_creations == 1
            assert stats.cache_hit_rate > 0
            assert stats.analyses == 1 + 1 + 4
            assert stats.runs == 5

    @needs_dev_shm
    def test_shared_mode_pool_spins_up_once_and_tears_down(self):
        before = _segments()
        nest = example_4_1(4)
        reference = _reference_store(nest)
        with Session(mode="shared", backend="compiled", workers=2) as session:
            first = session.run(nest)
            assert reference.identical(first.store)
            pool = session._executor._pool
            assert pool is not None and pool.started

            results = session.map([nest], repeat=3)
            assert session._executor._pool is pool  # one spin-up per session
            assert pool.alive_workers() == 2
            assert all(reference.identical(r.store) for r in results)
            assert session.stats().pool_workers_alive == 2
        # deterministic teardown: no shared-memory segments left behind
        assert _segments() == before

    def test_repeated_map_hits_cache_and_program_lru(self):
        with Session(mode="serial", backend="compiled") as session:
            session.map([example_4_1(4)], repeat=3)
            stats = session.stats()
            assert stats.cache_misses == 1
            assert stats.cache_hits == 2
            assert stats.programs_cached == 1
            assert session.cache.stats.hit_rate == pytest.approx(2 / 3)


class TestSessionBehavior:
    def test_closed_session_rejects_execution(self):
        session = Session()
        session.close()
        with pytest.raises(ExecutionError, match="closed"):
            session.run(example_4_1(4))

    def test_close_is_idempotent(self):
        session = Session(mode="shared", workers=2)
        session.run(example_4_1(4))
        session.close()
        session.close()

    def test_injected_cache_is_used(self):
        cache = AnalysisCache()
        with Session(cache=cache) as session:
            session.analyze(example_4_1(4))
        assert cache.stats.misses == 1

    def test_use_cache_false_disables_cache(self):
        with Session(use_cache=False) as session:
            assert session.cache is None
            a1 = session.analyze(example_4_1(4))
            a2 = session.analyze(example_4_1(4))
        assert not a1.cache_hit and not a2.cache_hit

    def test_verify_policy_always(self):
        with Session(verify="always") as session:
            result = session.run(example_4_1(4))
        assert result.max_abs_difference == 0.0
        assert result.verified is True

    def test_verify_override_per_run(self):
        with Session() as session:
            unchecked = session.run(example_4_1(4))
            checked = session.run(example_4_1(4), verify=True)
        assert unchecked.max_abs_difference is None
        assert unchecked.verified is None
        assert checked.verified is True

    def test_caller_store_is_used_and_mutated(self):
        nest = example_4_1(4)
        store = store_for_nest(nest)
        with Session() as session:
            result = session.run(nest, store=store)
        assert result.store is store
        assert _reference_store(nest).identical(store)

    def test_verify_with_caller_store_snapshots_initial_contents(self):
        nest = example_4_1(4)
        store = store_for_nest(nest, initializer="random", seed=3)
        expected = store.copy()
        execute_nest(nest, expected)
        with Session(verify="always") as session:
            result = session.run(nest, store=store)
        assert result.verified is True
        assert expected.identical(store)

    def test_placement_override(self):
        with Session() as session:
            outer = session.run(example_4_1(4))
            inner = session.run(example_4_1(4), placement="inner")
        assert outer.report.placement == "outer"
        assert inner.report.placement == "inner"
        assert _reference_store(example_4_1(4)).identical(inner.store)

    def test_map_names_must_align(self):
        with Session() as session:
            with pytest.raises(WorkloadError, match="names"):
                session.map([example_4_1(4)], names=["a", "b"])

    def test_uniform_sources_everywhere(self, tmp_path):
        path = tmp_path / "ex.loop"
        path.write_text("loop i1 = 0 .. 5\nA[i1] = A[i1 - 1] + 1.0\n")
        text = "loop i1 = 0 .. 5\nA[i1] = A[i1 - 1] + 1.0"
        with Session() as session:
            from_file = session.run(str(path))
            from_text = session.run(text)
            from_factory = session.run(example_4_1, n=4)
        assert from_file.iterations == from_text.iterations == 6
        assert from_factory.iterations == example_4_1(4).iteration_count()
        # file and text spell the same structure: one analysis, one hit
        assert session.cache.stats.hits >= 1
