"""Tests for the unified result model (:mod:`repro.api.results`)."""

import json

import pytest

from repro.api import Session
from repro.workloads.paper_examples import example_4_1, example_4_2


@pytest.fixture(scope="module")
def session():
    with Session(backend="compiled", verify="always") as s:
        yield s


@pytest.fixture(scope="module")
def run_result(session):
    return session.run(example_4_1(5))


class TestAnalysisResult:
    def test_stable_fields(self, session):
        analysis = session.analyze(example_4_2(5))
        assert analysis.name == example_4_2(5).name
        assert analysis.depth == 2
        assert analysis.placement == "outer"
        assert analysis.parallel_loops == 0
        assert analysis.partitions == 4
        assert analysis.analysis_seconds >= 0.0
        assert analysis.summary() == analysis.report.summary()

    def test_to_dict_is_json_safe(self, session):
        payload = session.analyze(example_4_1(5)).to_dict()
        rehydrated = json.loads(json.dumps(payload))
        assert rehydrated == payload
        assert payload["kind"] == "analysis"
        assert payload["partitions"] == 2
        assert payload["pdm_rank"] == 1
        assert isinstance(payload["transform"][0][0], int)
        assert {t["name"] for t in payload["pass_timings"]} >= {"build-pdm"}

    def test_to_json_round_trips(self, session):
        analysis = session.analyze(example_4_1(5))
        assert json.loads(analysis.to_json()) == analysis.to_dict()


class TestRunResult:
    def test_composes_analysis_and_execution(self, run_result):
        assert run_result.report is run_result.analysis.report
        assert run_result.iterations == example_4_1(5).iteration_count()
        assert run_result.num_chunks > 0
        assert run_result.mode == "serial"
        assert run_result.total_seconds == pytest.approx(
            run_result.setup_seconds + run_result.execute_seconds
        )
        assert run_result.checksum == pytest.approx(
            sum(float(a.data.sum()) for a in run_result.store.values())
        )

    def test_verification_fields(self, run_result):
        assert run_result.max_abs_difference == 0.0
        assert run_result.verified is True

    def test_to_dict_extends_analysis_payload(self, run_result):
        payload = run_result.to_dict()
        assert payload["kind"] == "run"
        assert payload["partitions"] == 2  # analysis fields still present
        assert payload["iterations"] == run_result.iterations
        assert payload["checksum"] == pytest.approx(run_result.checksum)
        assert payload["verified"] is True
        assert json.loads(json.dumps(payload)) == payload

    def test_to_json(self, run_result):
        assert json.loads(run_result.to_json())["kind"] == "run"


class TestSessionStats:
    def test_stats_serialize_and_describe(self, session):
        stats = session.stats()
        payload = stats.to_dict()
        assert json.loads(stats.to_json()) == payload
        assert payload["mode"] == "serial"
        text = stats.describe()
        assert "session:" in text
        assert "cache:" in text
        assert "executor:" in text
