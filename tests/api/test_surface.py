"""Public-API snapshot: surface changes must be explicit diffs, not accidents.

The golden lists below pin ``repro.__all__`` and ``repro.api.__all__``.
Adding, renaming or removing a public name fails here first — update the
snapshot (and the README migration notes) deliberately in the same change.
"""

import repro
import repro.api

REPRO_ALL_SNAPSHOT = sorted(
    [
        "__version__",
        # session façade (repro.api)
        "AnalysisResult",
        "RunResult",
        "Session",
        "SessionConfig",
        "SessionStats",
        "resolve_source",
        # serving gateway (repro.gateway)
        "Gateway",
        "GatewayConfig",
        "GatewayOverloaded",
        # loop nest IR
        "AffineExpr",
        "LoopBounds",
        "LoopNest",
        "LoopNestBuilder",
        "Statement",
        "loop_nest",
        "parse_affine",
        "parse_expression",
        "parse_statement",
        # core method
        "ParallelizationReport",
        "PseudoDistanceMatrix",
        "analyze_nest",
        "parallelize",
        "transform_non_full_rank",
        "partition_full_rank",
        "is_legal_unimodular",
        # code generation
        "TransformedLoopNest",
        "build_schedule",
        # symbolic execution plans
        "ChunkView",
        "ExecutionPlan",
        "emit_original_source",
        "emit_transformed_source",
        # runtime
        "ArrayStore",
        "OffsetArray",
        "ParallelExecutor",
        "execute_nest",
        "execute_transformed",
        "simulate_schedule",
        "store_for_nest",
        "verify_transformation",
        # ISDG
        "build_isdg",
        "compute_statistics",
        # integer linear algebra
        "Lattice",
        "hermite_normal_form",
        "smith_normal_form",
    ]
)

API_ALL_SNAPSHOT = sorted(
    [
        "AnalysisResult",
        "LoopSource",
        "RunResult",
        "Session",
        "SessionConfig",
        "SessionStats",
        "VERIFICATION_POLICIES",
        "parse_loop_file",
        "parse_loop_text",
        "resolve_source",
        "resolve_sources",
    ]
)


def test_repro_all_matches_snapshot():
    assert sorted(repro.__all__) == REPRO_ALL_SNAPSHOT


def test_repro_api_all_matches_snapshot():
    assert sorted(repro.api.__all__) == API_ALL_SNAPSHOT


def test_no_duplicate_exports():
    assert len(repro.__all__) == len(set(repro.__all__))
    assert len(repro.api.__all__) == len(set(repro.api.__all__))


def test_every_export_resolves():
    for name in repro.__all__:
        assert hasattr(repro, name), name
    for name in repro.api.__all__:
        assert hasattr(repro.api, name), name
