"""API-equivalence and deprecation contracts of the legacy entry points.

``Session.run`` must be bit-identical to the legacy
``parallelize_and_execute`` across the example suite and seeded random
nests, and the legacy wrappers must emit ``DeprecationWarning`` exactly
once per call (the suite-wide filter turns unexpected deprecation use into
errors; these tests opt out locally via ``pytest.warns``).
"""

import numpy as np
import pytest

from repro.api import Session, SessionConfig
from repro.core.pipeline import analyze_nest, parallelize, parallelize_and_execute
from repro.loopnest.builder import loop_nest
from repro.workloads.paper_examples import example_4_1
from repro.workloads.suite import workload_suite

SUITE = workload_suite(5)
SUITE_IDS = [case.name for case in SUITE]


def _random_nest(rng: np.random.Generator):
    """A random but analyzable 2-deep nest with genuine dependences."""
    n = int(rng.integers(4, 8))
    pattern = int(rng.integers(0, 3))
    if pattern == 0:
        a, b = int(rng.integers(1, 3)), int(rng.integers(0, 3))
        body = f"A[i1, i2] = A[i1 - {a}, i2 - {b}] * 0.5 + {float(rng.integers(1, 4))}"
    elif pattern == 1:
        p, q = int(rng.integers(2, 4)), int(rng.integers(2, 4))
        body = f"A[{p}*i1 + i2] = A[{p}*i1 + i2 - {q}] + B[i1, i2]"
    else:
        a = 2 * int(rng.integers(1, 3))
        m = int(rng.integers(1, 3))
        body = f"A[i1, i2] = A[-i1 - {a}, {m}*i1 + i2 + {a}] + 1.0"
    lo = int(rng.integers(-3, 1))
    builder = loop_nest(f"random-{pattern}").loop("i1", lo, lo + n).loop("i2", lo, lo + n)
    builder.statement(body)
    return builder.build()


def _legacy_run(nest, **kwargs):
    with pytest.warns(DeprecationWarning):
        return parallelize_and_execute(nest, **kwargs)


class TestSessionRunMatchesLegacy:
    @pytest.mark.parametrize("case", SUITE, ids=SUITE_IDS)
    def test_suite_bit_identical(self, case):
        legacy_report, legacy_result = _legacy_run(
            case.nest, backend="compiled", use_cache=False
        )
        with Session(SessionConfig(backend="compiled", use_cache=False)) as session:
            result = session.run(case.nest)
        assert legacy_result.store.identical(result.store)
        assert result.report.transform == legacy_report.transform
        assert result.report.parallel_levels == legacy_report.parallel_levels
        assert result.report.partition_count == legacy_report.partition_count
        assert result.iterations == legacy_result.total_iterations

    @pytest.mark.parametrize("seed", range(8))
    def test_random_nests_bit_identical(self, seed):
        nest = _random_nest(np.random.default_rng(1000 + seed))
        _, legacy_result = _legacy_run(nest, backend="vectorized", use_cache=False)
        with Session(backend="vectorized", use_cache=False) as session:
            result = session.run(nest)
        assert legacy_result.store.identical(result.store), (seed, nest.name)

    def test_shared_mode_bit_identical(self):
        nest = example_4_1(5)
        _, legacy_result = _legacy_run(
            nest, backend="compiled", mode="shared", workers=2, use_cache=False
        )
        with Session(mode="shared", backend="compiled", workers=2, use_cache=False) as session:
            result = session.run(nest)
        assert legacy_result.store.identical(result.store)
        assert result.mode == "shared"


class TestDeprecationContract:
    def test_parallelize_warns_exactly_once(self):
        nest = example_4_1(4)
        with pytest.warns(DeprecationWarning, match=r"parallelize\(\) is deprecated") as record:
            report = parallelize(nest)
        assert len([w for w in record if w.category is DeprecationWarning]) == 1
        assert report == analyze_nest(nest)

    def test_parallelize_and_execute_warns_exactly_once(self):
        with pytest.warns(DeprecationWarning, match=r"Session\.run\(\)") as record:
            report, result = parallelize_and_execute(example_4_1(4), backend="compiled")
        assert len([w for w in record if w.category is DeprecationWarning]) == 1
        assert result.total_iterations == example_4_1(4).iteration_count()

    def test_analyze_nest_does_not_warn(self, recwarn):
        analyze_nest(example_4_1(4))
        assert not [w for w in recwarn.list if w.category is DeprecationWarning]

    def test_session_surface_does_not_warn(self, recwarn):
        with Session(backend="compiled") as session:
            session.run(example_4_1(4))
        assert not [w for w in recwarn.list if w.category is DeprecationWarning]
