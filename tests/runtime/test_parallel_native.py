"""The in-kernel parallel driver: packing, scheduling, bit-identity, errors.

PR 10 moves the parallel-for over chunks *into* the compiled kernel: one
native call executes the whole plan on N OS threads (OpenMP / pthreads /
``numba.prange``).  This suite pins:

* ``pack_ranges``/``packed_ranges_for`` edge cases — empty selections,
  single-chunk plans, ``FusedPlan`` member boundaries — and the
  packing-once contract (the whole-plan table is built exactly once per
  plan; selections are row slices of it),
* the differential contract: the parallel driver is bit-identical to
  serial native and to the interpreter on the workload suite and seeded
  random nests, under thread counts 1/2/8 and both schedules,
* error parity: window violations, division by zero, domain and overflow
  errors raise the interpreter's exception types through the driver, with
  first-failing-chunk semantics, at every thread count,
* the ``threads`` mode auto-upgrade, the ``native-parallel`` executor mode
  and its thread-pool fallback for driverless backends,
* the derived default worker count (``os.cpu_count()`` clamped,
  ``$REPRO_WORKERS`` override) and the engine/thread reporting in
  ``ExecutionResult``/``RunResult``,
* the OpenMP compile probe (disk-persisted negative cache) and the
  pthreads work-queue fallback flavor.
"""

import os

import numpy as np
import pytest

from repro.api import Session
from repro.codegen import native as native_codegen
from repro.codegen.transformed_nest import TransformedLoopNest
from repro.core.pipeline import analyze_nest
from repro.exceptions import ExecutionError
from repro.loopnest.builder import loop_nest
from repro.plan import FusePlansPass, PlanPassManager
from repro.plan.ir import ChunkView
from repro.runtime.arrays import ArrayStore, OffsetArray, store_for_nest
from repro.runtime.backends import NativeBackend
from repro.runtime.executor import (
    WORKERS_ENV,
    ParallelExecutor,
    default_worker_count,
)
from repro.runtime.interpreter import execute_nest
from repro.runtime.telemetry import ExecutionTelemetry
from repro.workloads.paper_examples import example_4_1, example_4_2
from repro.workloads.suite import workload_suite

SUITE = workload_suite(5)
SUITE_IDS = [case.name for case in SUITE]
THREAD_COUNTS = (1, 2, 8)

ENGINES = native_codegen.available_engines()
needs_engine = pytest.mark.skipif(
    not ENGINES, reason="no native engine (numba or a C compiler) available"
)


def _reference_and_transformed(nest):
    transformed = TransformedLoopNest.from_report(analyze_nest(nest))
    base = store_for_nest(nest)
    ref = base.copy()
    execute_nest(nest, ref)
    return base, ref, transformed


def _random_nest(rng: np.random.Generator):
    """Same families as the backend differential suite (seeded)."""
    n = int(rng.integers(4, 8))
    pattern = int(rng.integers(0, 3))
    if pattern == 0:
        a, b = int(rng.integers(1, 3)), int(rng.integers(0, 3))
        body = f"A[i1, i2] = A[i1 - {a}, i2 - {b}] * 0.5 + {float(rng.integers(1, 4))}"
    elif pattern == 1:
        p, q = int(rng.integers(2, 4)), int(rng.integers(2, 4))
        body = f"A[{p}*i1 + i2] = A[{p}*i1 + i2 - {q}] + B[i1, i2]"
    else:
        a = 2 * int(rng.integers(1, 3))
        m = int(rng.integers(1, 3))
        body = f"A[i1, i2] = A[-i1 - {a}, {m}*i1 + i2 + {a}] + 1.0"
    lo = int(rng.integers(-3, 1))
    builder = loop_nest(f"random-{pattern}").loop("i1", lo, lo + n).loop("i2", lo, lo + n)
    builder.statement(body)
    if rng.integers(0, 2):
        builder.statement("C[i1, i2] = C[i1 - 2, i2] + B[i1, i2] * 0.25")
    return builder.build()


# ---------------------------------------------------------------------------
# pack_ranges / packed_ranges_for edge cases (satellite)
# ---------------------------------------------------------------------------

class TestPackedRanges:
    def test_pack_ranges_empty_input(self):
        flat = native_codegen.pack_ranges([], 2)
        assert flat.dtype == np.int64 and flat.size == 0

    def test_empty_selection_packs_to_zero_chunks(self):
        _, _, transformed = _reference_and_transformed(example_4_1(8))
        plan = transformed.execution_plan()
        n_chunks, flat = native_codegen.packed_ranges_for(plan, chunk_indices=())
        assert n_chunks == 0
        assert flat.size == 0

    def test_single_chunk_plan(self):
        # A fully serial recurrence: the plan has exactly one chunk.
        nest = (
            loop_nest("serial-chain")
            .loop("i1", 0, 7)
            .statement("A[i1] = A[i1 - 1] + 1.0")
            .build()
        )
        _, _, transformed = _reference_and_transformed(nest)
        plan = transformed.execution_plan()
        assert len(plan.select_chunks(None)) == 1
        whole = native_codegen.packed_ranges_for(plan)
        only = native_codegen.packed_ranges_for(plan, chunk_indices=(0,))
        assert whole is not None and only is not None
        assert whole[0] == only[0] == 1
        assert np.array_equal(whole[1], only[1])
        assert whole[1].size == plan.depth * 3

    def test_selection_slices_match_direct_packing(self):
        _, _, transformed = _reference_and_transformed(example_4_1(10))
        plan = transformed.execution_plan()
        views = plan.select_chunks(None)
        indices = tuple(range(0, len(views), 2))
        n_chunks, flat = native_codegen.packed_ranges_for(plan, chunk_indices=indices)
        expected = [views[i].value_ranges() for i in indices]
        expected = [ranges for ranges in expected if ranges]
        assert n_chunks == len(expected)
        assert np.array_equal(
            flat, native_codegen.pack_ranges(expected, plan.depth)
        )

    def test_whole_plan_equals_all_indices_selection(self):
        _, _, transformed = _reference_and_transformed(example_4_1(9))
        plan = transformed.execution_plan()
        total = len(plan.select_chunks(None))
        whole = native_codegen.packed_ranges_for(plan)
        explicit = native_codegen.packed_ranges_for(plan, tuple(range(total)))
        assert whole[0] == explicit[0]
        assert np.array_equal(whole[1], explicit[1])

    def test_non_separable_plan_packs_to_none(self):
        # Example 4.2's full-rank PDM yields lattice chunks that are not
        # strided ranges; the packer must refuse them (callers fall back).
        _, _, transformed = _reference_and_transformed(example_4_2(8))
        plan = transformed.execution_plan()
        assert native_codegen.packed_ranges_for(plan) is None
        assert native_codegen.packed_ranges_for(plan, (0,)) is None

    def test_fused_plan_member_boundaries(self):
        nests = [example_4_1(8), example_4_1(5)]
        transformeds = [
            TransformedLoopNest.from_report(analyze_nest(nest)) for nest in nests
        ]
        plans = [transformed.execution_plan() for transformed in transformeds]
        [fused] = PlanPassManager([FusePlansPass()]).optimize(
            plans, tuple(transformeds)
        ).plans
        total = sum(len(member.select_chunks(None)) for member in fused.members)
        # A global group spanning the member boundary splits into local
        # indices; each member's packed slice must equal packing its own
        # chunks directly — the fused index space never leaks across.
        split = fused.split_group(tuple(range(total)))
        seen = 0
        for member_index, local_indices in split:
            member = fused.members[member_index]
            packed = native_codegen.packed_ranges_for(member, local_indices)
            direct = [
                view.value_ranges()
                for view in member.select_chunks(local_indices)
            ]
            direct = [ranges for ranges in direct if ranges]
            assert packed[0] == len(direct)
            assert np.array_equal(
                packed[1], native_codegen.pack_ranges(direct, member.depth)
            )
            seen += len(local_indices)
        assert seen == total

    def test_packing_happens_once_per_plan(self, monkeypatch):
        """Regression: selections slice the cached whole-plan table.

        ``value_ranges`` used to be re-gathered for every distinct group
        selection; now it runs exactly once per chunk per plan, no matter
        how many selections are requested.
        """
        _, _, transformed = _reference_and_transformed(example_4_1(10))
        plan = transformed.execution_plan()
        num_chunks = len(plan.select_chunks(None))
        calls = {"n": 0}
        original = ChunkView.value_ranges

        def counting(self):
            calls["n"] += 1
            return original(self)

        monkeypatch.setattr(ChunkView, "value_ranges", counting)
        native_codegen.packed_ranges_for(plan)
        native_codegen.packed_ranges_for(plan, tuple(range(0, num_chunks, 2)))
        native_codegen.packed_ranges_for(plan, tuple(range(1, num_chunks, 2)))
        native_codegen.packed_ranges_for(plan, (0,))
        assert calls["n"] == num_chunks

    def test_repeated_selection_hits_the_selection_memo(self, monkeypatch):
        _, _, transformed = _reference_and_transformed(example_4_1(8))
        plan = transformed.execution_plan()
        native_codegen.packed_ranges_for(plan, (0, 1))
        monkeypatch.setattr(
            ChunkView, "value_ranges",
            lambda self: pytest.fail("selection memo was bypassed"),
        )
        native_codegen.packed_ranges_for(plan, (0, 1))


# ---------------------------------------------------------------------------
# default worker count (satellite)
# ---------------------------------------------------------------------------

class TestDefaultWorkerCount:
    def test_derived_from_cpu_count(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        count = default_worker_count()
        assert 1 <= count <= 16
        assert count == max(1, min(os.cpu_count() or 1, 16))

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "6")
        assert default_worker_count() == 6

    def test_invalid_env_ignored(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "zero")
        assert default_worker_count() >= 1
        monkeypatch.setenv(WORKERS_ENV, "-3")
        assert default_worker_count() >= 1

    def test_executor_uses_derived_default(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "5")
        assert ParallelExecutor(mode="threads").workers == 5
        assert ParallelExecutor(mode="threads", workers=2).workers == 2


# ---------------------------------------------------------------------------
# static-vs-dynamic schedule choice
# ---------------------------------------------------------------------------

class TestScheduleChoice:
    def test_uniform_sizes_pick_static(self):
        executor = ParallelExecutor(mode="threads", workers=4)
        assert executor._schedule_is_dynamic((8, 8, 8, 8), key=None) is False

    def test_skewed_sizes_pick_dynamic(self):
        executor = ParallelExecutor(mode="threads", workers=4)
        assert executor._schedule_is_dynamic((32, 2, 2, 2), key=None) is True

    def test_single_chunk_is_static(self):
        executor = ParallelExecutor(mode="threads", workers=4)
        assert executor._schedule_is_dynamic((16,), key=None) is False

    def test_measured_skew_overrides_uniform_sizes(self):
        telemetry = ExecutionTelemetry()
        executor = ParallelExecutor(mode="threads", workers=4, telemetry=telemetry)
        key = "prog:4"
        sizes = (8, 8, 8, 8)
        # Uniform closed-form sizes, but chunk 0 measures 10x the others.
        for _ in range(4):
            telemetry.record_group(key, (0,), (8,), 1.0)
            for index in (1, 2, 3):
                telemetry.record_group(key, (index,), (8,), 0.1)
        assert telemetry.chunk_costs(key, sizes) is not None
        assert executor._schedule_is_dynamic(sizes, key) is True


# ---------------------------------------------------------------------------
# differential: parallel driver vs serial native vs interpreter
# ---------------------------------------------------------------------------

@needs_engine
class TestParallelDifferential:
    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("case", SUITE, ids=SUITE_IDS)
    def test_suite_bit_identical(self, case, engine):
        base, ref, transformed = _reference_and_transformed(case.nest)
        plan = transformed.execution_plan()
        backend = NativeBackend(engine=engine)
        serial = base.copy()
        backend.execute_plan(transformed, plan, serial)
        assert ref.identical(serial), f"serial native diverged on {case.name!r}"
        for threads in THREAD_COUNTS:
            for dynamic in (True, False):
                result = base.copy()
                label = backend.execute_plan_parallel(
                    transformed, plan, result, threads=threads, dynamic=dynamic
                )
                if label is None:
                    # Non-packable plan (or no driver): the contract is
                    # that *nothing* was written, so the caller can fall
                    # back — the untouched store must equal the base.
                    assert base.identical(result), (
                        f"driver refused {case.name!r} but wrote to the store"
                    )
                    continue
                assert label.startswith(f"native-{engine}-")
                assert serial.identical(result), (
                    f"parallel ({threads} thread(s), dynamic={dynamic}) diverged "
                    f"from serial native on {case.name!r}"
                )

    @pytest.mark.parametrize("threads", THREAD_COUNTS)
    @pytest.mark.parametrize("seed", range(8))
    def test_random_nests_bit_identical(self, seed, threads):
        nest = _random_nest(np.random.default_rng(seed))
        base, ref, transformed = _reference_and_transformed(nest)
        result = base.copy()
        outcome = ParallelExecutor(
            mode="native-parallel", workers=threads, backend="native"
        ).run(transformed, result)
        assert ref.identical(result), (seed, nest.name, outcome.backend)

    @pytest.mark.parametrize("threads", THREAD_COUNTS)
    def test_executor_mode_reports_engine_and_threads(self, threads):
        base, ref, transformed = _reference_and_transformed(example_4_1(12))
        result = base.copy()
        outcome = ParallelExecutor(
            mode="native-parallel", workers=threads, backend="native"
        ).run(transformed, result)
        assert ref.identical(result)
        assert outcome.engine is not None and outcome.engine.startswith("native-")
        assert outcome.backend == outcome.engine
        assert 1 <= outcome.threads <= threads
        assert outcome.mode == "native-parallel"

    def test_threads_mode_auto_upgrades(self):
        base, ref, transformed = _reference_and_transformed(example_4_1(12))
        result = base.copy()
        outcome = ParallelExecutor(
            mode="threads", workers=2, backend="native"
        ).run(transformed, result)
        assert ref.identical(result)
        assert outcome.engine is not None and outcome.engine.startswith("native-")
        assert outcome.mode == "threads"

    def test_driverless_backend_falls_back_to_thread_pool(self):
        base, ref, transformed = _reference_and_transformed(example_4_1(10))
        result = base.copy()
        outcome = ParallelExecutor(
            mode="native-parallel", workers=2, backend="vectorized"
        ).run(transformed, result)
        assert ref.identical(result)
        assert outcome.engine is None
        assert outcome.threads == 0

    def test_fused_dispatch_through_driver(self):
        nests = [case.nest for case in SUITE[:3]]
        transformeds = [
            TransformedLoopNest.from_report(analyze_nest(nest)) for nest in nests
        ]
        plans = [transformed.execution_plan() for transformed in transformeds]
        [fused] = PlanPassManager([FusePlansPass()]).optimize(
            plans, tuple(transformeds)
        ).plans
        stores = [store_for_nest(nest) for nest in nests]
        executor = ParallelExecutor(mode="native-parallel", workers=2, backend="native")
        results = executor.run_fused(transformeds, fused, stores)
        assert len(results) == len(nests)
        for nest, store in zip(nests, stores):
            ref = store_for_nest(nest)
            execute_nest(nest, ref)
            assert ref.identical(store), nest.name

    def test_session_run_result_surfaces_engine(self):
        with Session(mode="native-parallel", backend="native", workers=2) as session:
            result = session.run(example_4_1(10))
            payload = result.to_dict()
        if result.engine is None:
            pytest.skip("driver unavailable for the active engine")
        assert result.engine.startswith("native-")
        assert result.threads >= 1
        assert payload["engine"] == result.engine
        assert payload["threads"] == result.threads

    def test_prepare_plan_charges_compile_to_setup(self):
        native_codegen.clear_kernel_cache()
        backend = NativeBackend()
        transformed = _reference_and_transformed(example_4_1(10))[2]
        plan = transformed.execution_plan()
        backend.prepare_plan(transformed, plan)
        # The (single) build carries both entry points; a subsequent
        # parallel support probe compiles nothing new.
        compiled = backend.stats["compile_seconds"]
        assert backend.supports_parallel_plan(transformed, plan) in (True, False)
        backend.prepare_plan(transformed, plan)
        assert backend.stats["compile_seconds"] - compiled < 0.05


# ---------------------------------------------------------------------------
# error parity through the parallel driver
# ---------------------------------------------------------------------------

@needs_engine
class TestParallelErrors:
    def _run_parallel(self, nest, store, threads, engine):
        transformed = TransformedLoopNest.from_report(analyze_nest(nest))
        plan = transformed.execution_plan()
        backend = NativeBackend(engine=engine)
        label = backend.execute_plan_parallel(
            transformed, plan, store, threads=threads, dynamic=True
        )
        if label is None:
            pytest.skip(f"no parallel driver for engine {engine!r}")

    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("threads", THREAD_COUNTS)
    def test_division_by_zero(self, threads, engine):
        nest = (
            loop_nest("par-divzero")
            .loop("i1", 0, 4)
            .loop("i2", -2, 2)
            .statement("A[i1, i2] = B[i1, i2] + 1.0 / (i2)")
            .build()
        )
        store = store_for_nest(nest)
        with pytest.raises(ZeroDivisionError):
            execute_nest(nest, store.copy())
        with pytest.raises(ZeroDivisionError):
            self._run_parallel(nest, store.copy(), threads, engine)

    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("threads", THREAD_COUNTS)
    def test_math_domain_error(self, threads, engine):
        nest = (
            loop_nest("par-domain")
            .loop("i1", -3, 3)
            .statement("A[i1] = sqrt((i1))")
            .build()
        )
        store = store_for_nest(nest)
        with pytest.raises(ValueError):
            execute_nest(nest, store.copy())
        with pytest.raises(ValueError):
            self._run_parallel(nest, store.copy(), threads, engine)

    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("threads", THREAD_COUNTS)
    def test_overflow_error(self, threads, engine):
        nest = (
            loop_nest("par-overflow")
            .loop("i1", 0, 4)
            .statement("A[i1] = exp((i1) * 500.0)")
            .build()
        )
        store = store_for_nest(nest)
        with pytest.raises(OverflowError):
            execute_nest(nest, store.copy())
        with pytest.raises(OverflowError):
            self._run_parallel(nest, store.copy(), threads, engine)

    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("threads", THREAD_COUNTS)
    def test_window_violation(self, threads, engine):
        nest = (
            loop_nest("par-window")
            .loop("i1", 0, 5)
            .statement("A[i1] = A[i1 - 1] + 1.0")
            .build()
        )

        def tight_store():
            store = ArrayStore()
            store["A"] = OffsetArray.from_window([0], [5])
            return store

        with pytest.raises(ExecutionError):
            execute_nest(nest, tight_store())
        with pytest.raises(ExecutionError):
            self._run_parallel(nest, tight_store(), threads, engine)

    @pytest.mark.parametrize("threads", THREAD_COUNTS)
    def test_executor_mode_propagates_errors(self, threads):
        nest = (
            loop_nest("par-mode-divzero")
            .loop("i1", 0, 4)
            .loop("i2", -2, 2)
            .statement("A[i1, i2] = B[i1, i2] + 1.0 / (i2)")
            .build()
        )
        transformed = TransformedLoopNest.from_report(analyze_nest(nest))
        executor = ParallelExecutor(
            mode="native-parallel", workers=threads, backend="native"
        )
        with pytest.raises(ZeroDivisionError):
            executor.run(transformed, store_for_nest(nest))


# ---------------------------------------------------------------------------
# OpenMP probe and the pthreads fallback flavor (cc engine)
# ---------------------------------------------------------------------------

needs_cc = pytest.mark.skipif("cc" not in ENGINES, reason="no C compiler")


@needs_cc
class TestCcFlavors:
    @pytest.fixture()
    def fresh_cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv(native_codegen.CACHE_DIR_ENV, str(tmp_path))
        native_codegen.clear_kernel_cache()
        yield tmp_path
        native_codegen.clear_kernel_cache()

    def test_probe_persists_verdict_on_disk(self, fresh_cache):
        verdict = native_codegen.openmp_supported()
        suffix = ".ok" if verdict else ".no"
        markers = [
            name
            for name in os.listdir(fresh_cache)
            if name.startswith("openmp_probe_") and name.endswith(suffix)
        ]
        assert markers, "probe verdict was not persisted"
        # A second call (fresh memo) must read the marker, not re-compile.
        native_codegen.clear_kernel_cache()
        assert native_codegen.openmp_supported() is verdict

    def test_negative_cache_marker_wins(self, fresh_cache, monkeypatch):
        import hashlib

        compiler = native_codegen._find_c_compiler()
        tag = hashlib.sha256(compiler.encode("utf-8")).hexdigest()[:16]
        (fresh_cache / f"openmp_probe_{tag}.no").write_text("")
        assert native_codegen.openmp_supported() is False

    def test_pthreads_flavor_bit_identical(self, fresh_cache, monkeypatch):
        monkeypatch.setattr(native_codegen, "_OPENMP_CACHED", False)
        base, ref, transformed = _reference_and_transformed(example_4_1(12))
        program = native_codegen.native_program_for(transformed, "cc")
        assert program is not None
        assert program.kernel.flavor == "pthreads"
        assert "pthread_create" in program.kernel.source
        plan = transformed.execution_plan()
        n_chunks, flat = native_codegen.packed_ranges_for(plan)
        for threads in THREAD_COUNTS:
            result = base.copy()
            code = program.execute_parallel(result, flat, n_chunks, threads, True)
            assert code == native_codegen.OK
            assert ref.identical(result), f"pthreads flavor diverged at {threads}"

    def test_openmp_source_carries_both_schedules(self, fresh_cache):
        if not native_codegen.openmp_supported():
            pytest.skip("toolchain lacks OpenMP")
        _, _, transformed = _reference_and_transformed(example_4_2(6))
        program = native_codegen.native_program_for(transformed, "cc")
        assert program.kernel.flavor == "openmp"
        assert "schedule(dynamic)" in program.kernel.source
        assert "schedule(static)" in program.kernel.source
