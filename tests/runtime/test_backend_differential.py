"""Differential test harness: every execution backend vs. the interpreter.

The interpreter (:func:`repro.runtime.interpreter.execute_nest`) is the
semantic reference.  Every registered backend — and every executor mode on
top of every backend — must produce **bit-identical** final array stores on:

* the full workload suite (:func:`repro.workloads.suite.workload_suite`),
* randomized synthetic nests drawn from a seeded RNG (uniform-distance,
  coupled variable-distance and 4.1-style anti-diagonal patterns).

``ArrayStore.identical`` compares with ``np.array_equal`` — no tolerance.
"""

import numpy as np
import pytest

from repro.codegen.schedule import build_schedule
from repro.codegen.transformed_nest import TransformedLoopNest
from repro.core.pipeline import analyze_nest
from repro.exceptions import ExecutionError
from repro.loopnest.builder import loop_nest
from repro.runtime.arrays import store_for_nest
from repro.runtime.backends import (
    CompiledBackend,
    ExecutionBackend,
    InterpreterBackend,
    VectorizedBackend,
    available_backends,
    get_backend,
    register_backend,
    resolve_backend,
)
from repro.runtime.executor import ParallelExecutor
from repro.runtime.interpreter import execute_nest
from repro.workloads.paper_examples import example_4_1, example_4_2
from repro.workloads.suite import workload_suite

SUITE = workload_suite(5)
SUITE_IDS = [case.name for case in SUITE]

# The vectorized backend is exercised twice: with its default width
# threshold (narrow schedules delegate to the compiled body) and with the
# round path forced, so cross-chunk vectorization is covered even on the
# small suite sizes.
BACKEND_VARIANTS = [
    ("interpreter", {}),
    ("compiled", {}),
    ("vectorized", {}),
    ("vectorized", {"min_parallel_width": 2}),
    ("vectorized", {"check_independence": False, "min_parallel_width": 2}),
    ("native", {}),
]
VARIANT_IDS = [
    "interpreter", "compiled", "vectorized", "vectorized-forced", "vectorized-unchecked",
    "native",
]


def _reference_and_transformed(nest):
    reference = store_for_nest(nest)
    execute_nest(nest, reference.copy())  # warm sanity: must not raise
    transformed = TransformedLoopNest.from_report(analyze_nest(nest))
    base = store_for_nest(nest)
    ref = base.copy()
    execute_nest(nest, ref)
    return base, ref, transformed


class TestWorkloadSuiteDifferential:
    @pytest.mark.parametrize("case", SUITE, ids=SUITE_IDS)
    @pytest.mark.parametrize(
        "backend_name, options", BACKEND_VARIANTS, ids=VARIANT_IDS
    )
    def test_backend_matches_interpreter_reference(self, case, backend_name, options):
        base, ref, transformed = _reference_and_transformed(case.nest)
        backend = get_backend(backend_name, **options)
        result = base.copy()
        backend.execute(transformed, result)
        assert ref.identical(result), (
            f"backend {backend_name!r} ({options}) diverged on {case.name!r}: "
            f"max |diff| = {ref.max_abs_difference(result):.3e}"
        )

    @pytest.mark.parametrize("mode", ["serial", "threads"])
    @pytest.mark.parametrize(
        "backend_name", ["interpreter", "compiled", "vectorized", "native"]
    )
    def test_executor_modes_per_backend(self, mode, backend_name):
        for case in SUITE[:6]:
            base, ref, transformed = _reference_and_transformed(case.nest)
            result = base.copy()
            backend = get_backend(backend_name)
            outcome = ParallelExecutor(mode=mode, workers=4, backend=backend).run(
                transformed, result
            )
            # The result reports the engine that actually ran: thread mode is
            # chunk-granular (the vectorized backend delegates there), a
            # serial vectorized run may fall back dynamically and a serial
            # native run reports its engine ("native-cc" / "native-numba") —
            # or whatever it fell back to when the program isn't native.
            if backend_name == "native":
                assert outcome.backend.split("-")[0] in (
                    "native", "vectorized", "compiled"
                )
            else:
                assert outcome.backend in (backend.name, backend.per_chunk_name)
                if backend_name != "vectorized":
                    assert outcome.backend == backend_name
            assert ref.identical(result), (mode, backend_name, case.name)

    @pytest.mark.parametrize("backend_name", ["compiled", "vectorized", "native"])
    def test_process_mode_merges_backend_writes(self, backend_name):
        nest = example_4_2(4)
        base, ref, transformed = _reference_and_transformed(nest)
        result = base.copy()
        ParallelExecutor(mode="processes", workers=2, backend=backend_name).run(
            transformed, result
        )
        assert ref.identical(result)


# ---------------------------------------------------------------------------
# randomized synthetic nests (seeded)
# ---------------------------------------------------------------------------

def _random_nest(rng: np.random.Generator):
    """A random but analyzable 2-deep nest with genuine dependences."""
    n = int(rng.integers(4, 8))
    pattern = int(rng.integers(0, 3))
    if pattern == 0:
        # uniform distance recurrence
        a, b = int(rng.integers(1, 3)), int(rng.integers(0, 3))
        body = f"A[i1, i2] = A[i1 - {a}, i2 - {b}] * 0.5 + {float(rng.integers(1, 4))}"
    elif pattern == 1:
        # coupled 1-D subscript: variable distances
        p, q = int(rng.integers(2, 4)), int(rng.integers(2, 4))
        body = f"A[{p}*i1 + i2] = A[{p}*i1 + i2 - {q}] + B[i1, i2]"
    else:
        # 4.1-style anti-diagonal flip
        a = 2 * int(rng.integers(1, 3))
        m = int(rng.integers(1, 3))
        body = f"A[i1, i2] = A[-i1 - {a}, {m}*i1 + i2 + {a}] + 1.0"
    lo = int(rng.integers(-3, 1))
    builder = loop_nest(f"random-{pattern}").loop("i1", lo, lo + n).loop("i2", lo, lo + n)
    builder.statement(body)
    if rng.integers(0, 2):
        # B is read 2-D everywhere, so its window stays consistent no matter
        # which pattern the first statement drew for A.
        builder.statement("C[i1, i2] = C[i1 - 2, i2] + B[i1, i2] * 0.25")
    return builder.build()


class TestRandomizedDifferential:
    @pytest.mark.parametrize("seed", range(12))
    def test_random_nests_bit_identical(self, seed):
        rng = np.random.default_rng(seed)
        nest = _random_nest(rng)
        base, ref, transformed = _reference_and_transformed(nest)
        for backend_name, options in BACKEND_VARIANTS:
            backend = get_backend(backend_name, **options)
            result = base.copy()
            backend.execute(transformed, result)
            assert ref.identical(result), (seed, nest.name, backend_name, options)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_initial_contents(self, seed):
        nest = _random_nest(np.random.default_rng(100 + seed))
        base = store_for_nest(nest, initializer="random", seed=seed)
        ref = base.copy()
        execute_nest(nest, ref)
        transformed = TransformedLoopNest.from_report(analyze_nest(nest))
        for backend_name, options in BACKEND_VARIANTS:
            result = base.copy()
            get_backend(backend_name, **options).execute(transformed, result)
            assert ref.identical(result), (seed, backend_name)


# ---------------------------------------------------------------------------
# backend-specific behavior
# ---------------------------------------------------------------------------

class TestVectorizedBehavior:
    def test_wide_schedule_actually_vectorizes(self):
        nest = example_4_1(8)
        base, ref, transformed = _reference_and_transformed(nest)
        backend = VectorizedBackend(min_parallel_width=2)
        backend.execute(transformed, base.copy())
        assert backend.stats["vectorized_rounds"] > 0
        assert backend.stats["vectorized_iterations"] > backend.stats["fallback_iterations"]

    def test_sequential_nest_falls_back(self):
        # The wavefront has no chunk parallelism: every round is a singleton.
        nest = (
            loop_nest("wavefront")
            .loop("i1", 1, 6)
            .loop("i2", 1, 6)
            .statement("A[i1, i2] = A[i1 - 1, i2] + A[i1, i2 - 1]")
            .build()
        )
        base, ref, transformed = _reference_and_transformed(nest)
        backend = VectorizedBackend(min_parallel_width=2)
        result = base.copy()
        backend.execute(transformed, result)
        assert ref.identical(result)
        assert backend.stats["vectorized_rounds"] == 0

    def test_narrow_schedule_delegates_to_compiled(self):
        nest = example_4_2(5)  # 4 chunks < default width threshold
        base, ref, transformed = _reference_and_transformed(nest)
        backend = VectorizedBackend()
        result = base.copy()
        backend.execute(transformed, result)
        assert ref.identical(result)
        assert backend.stats["delegated_runs"] == 1
        assert backend.stats["rounds"] == 0
        assert backend.last_execution_engine == "compiled"
        # ... and the executor result reports the engine that ran.
        outcome = ParallelExecutor(mode="serial", backend=backend).run(
            transformed, base.copy()
        )
        assert outcome.backend == "compiled"
        wide = example_4_1(8)
        base_w, ref_w, transformed_w = _reference_and_transformed(wide)
        outcome = ParallelExecutor(mode="serial", backend=VectorizedBackend()).run(
            transformed_w, base_w.copy()
        )
        assert outcome.backend == "vectorized"

    def test_division_by_zero_matches_interpreter(self):
        # 1.0 / i2 hits i2 == 0: the interpreter raises ZeroDivisionError,
        # and so must the vectorized backend (NumPy would store inf).
        nest = (
            loop_nest("divzero")
            .loop("i1", 0, 4)
            .loop("i2", -2, 2)
            .statement("A[i1, i2] = B[i1, i2] + 1.0 / (i2)")
            .build()
        )
        store = store_for_nest(nest)
        with pytest.raises(ZeroDivisionError):
            execute_nest(nest, store.copy())
        transformed = TransformedLoopNest.from_report(analyze_nest(nest))
        backend = VectorizedBackend(min_parallel_width=2)
        with pytest.raises(ZeroDivisionError):
            backend.execute(transformed, store.copy())

    def test_call_expressions_stay_bit_identical(self):
        nest = (
            loop_nest("transcendental")
            .loop("i1", 0, 6)
            .loop("i2", 0, 6)
            .statement("A[i1, i2] = sin(B[i1, i2]) + exp(A[i1, i2] * 0.01) + max(1.0, (i1))")
            .build()
        )
        base, ref, transformed = _reference_and_transformed(nest)
        backend = VectorizedBackend(min_parallel_width=2)
        result = base.copy()
        backend.execute(transformed, result)
        assert ref.identical(result)
        assert backend.stats["vectorized_rounds"] > 0

    def test_independence_check_catches_bogus_parallel_levels(self):
        # Deliberately mislabel a recurrence as fully parallel: the dynamic
        # check must detect the cross-chunk conflicts and fall back to
        # chunk-major sequential execution, keeping the result identical to
        # the (identity) transformed order.
        nest = (
            loop_nest("bogus")
            .loop("i1", 0, 6)
            .statement("A[i1] = A[i1 - 1] + 1.0")
            .build()
        )
        transformed = TransformedLoopNest.identity(nest)
        transformed.parallel_levels = (0,)  # wrong on purpose
        base = store_for_nest(nest)
        ref = base.copy()
        execute_nest(nest, ref)
        backend = VectorizedBackend(min_parallel_width=2)
        result = base.copy()
        backend.execute(transformed, result)
        assert ref.identical(result)
        assert backend.stats["illegal_schedule_fallbacks"] == 1
        assert backend.stats["vectorized_rounds"] == 0

    def test_independence_check_catches_cross_round_conflicts(self):
        # The adversarial case for a *per-round* check: chunks A=[(0,0),(0,1)]
        # and B=[(1,0),(1,1)] where (1,0) [chunk B, round 0] reads the cell
        # A[0,1] that (0,1) [chunk A, round 1] writes.  No round shares a
        # cell internally, yet round-major order runs (1,0) before (0,1)
        # while the chunk-major reference runs it after.  The global
        # cross-chunk check must catch this and fall back.
        nest = (
            loop_nest("cross-round")
            .loop("i1", 0, 1)
            .loop("i2", 0, 1)
            .statement("A[i1, i2] = A[i1 - 1, i2 + 1] + 1.0")
            .build()
        )
        transformed = TransformedLoopNest.identity(nest)
        transformed.parallel_levels = (0,)  # wrong on purpose: i1 carries a dependence
        base = store_for_nest(nest)
        # chunk-major reference in the transformed (identity) order
        ref = base.copy()
        for chunk_iterations in ([(0, 0), (0, 1)], [(1, 0), (1, 1)]):
            for iteration in chunk_iterations:
                env = nest.env_for(iteration)
                for stmt in nest.statements:
                    ref[stmt.target.array][stmt.target.subscript_values(env)] = (
                        stmt.rhs.evaluate(env, ref)
                    )
        backend = VectorizedBackend(min_parallel_width=2)
        result = base.copy()
        backend.execute(transformed, result)
        assert ref.identical(result)
        assert backend.stats["illegal_schedule_fallbacks"] == 1
        assert backend.stats["vectorized_rounds"] == 0


class TestCompiledBehavior:
    def test_execute_original_matches_interpreter(self):
        nest = example_4_1(5)
        store = store_for_nest(nest)
        ref = store.copy()
        execute_nest(nest, ref)
        result = store.copy()
        CompiledBackend().execute_original(nest, result)
        assert ref.identical(result)

    def test_body_function_cached_per_nest(self):
        nest = example_4_1(4)
        assert CompiledBackend.body_function(nest) is CompiledBackend.body_function(nest)

    def test_array_named_iterations_does_not_shadow(self):
        # The emitted chunk body takes (arrays, iterations) parameters; an
        # array with either name must not shadow them.
        nest = (
            loop_nest("shadow")
            .loop("i1", 1, 6)
            .statement("iterations[i1] = iterations[i1 - 1] + arrays[i1]")
            .build()
        )
        base, ref, transformed = _reference_and_transformed(nest)
        for backend_name in ("compiled", "vectorized"):
            result = base.copy()
            get_backend(backend_name).execute(transformed, result)
            assert ref.identical(result), backend_name


class TestRegistry:
    def test_available_backends(self):
        names = available_backends()
        assert {"interpreter", "compiled", "vectorized", "native"} <= set(names)

    def test_get_backend_unknown(self):
        with pytest.raises(ExecutionError):
            get_backend("cuda")

    def test_executor_rejects_unknown_backend(self):
        with pytest.raises(ExecutionError):
            ParallelExecutor(mode="serial", backend="cuda")

    def test_resolve_backend_passthrough(self):
        backend = VectorizedBackend()
        assert resolve_backend(backend) is backend
        assert isinstance(resolve_backend("interpreter"), InterpreterBackend)

    def test_register_custom_backend(self):
        class ReversedChunks(ExecutionBackend):
            """Chunks in reverse order — legal because chunks are independent."""

            name = "reversed-chunks"

            def execute(self, transformed, store, chunks=None):
                if chunks is None:
                    chunks = build_schedule(transformed)
                for chunk in reversed(list(chunks)):
                    self.execute_chunk(transformed, chunk, store)
                return store

            def execute_chunk(self, transformed, chunk, store):
                InterpreterBackend().execute_chunk(transformed, chunk, store)

        register_backend("reversed-chunks", ReversedChunks)
        try:
            nest = example_4_1(5)
            base, ref, transformed = _reference_and_transformed(nest)
            result = base.copy()
            get_backend("reversed-chunks").execute(transformed, result)
            assert ref.identical(result)
        finally:
            from repro.runtime import backends as backends_module

            backends_module._REGISTRY.pop("reversed-chunks", None)
