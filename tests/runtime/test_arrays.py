"""Tests for the runtime array store."""

import numpy as np
import pytest

from repro.exceptions import ExecutionError
from repro.runtime.arrays import ArrayStore, OffsetArray, store_for_nest
from repro.workloads.paper_examples import example_4_1
from repro.workloads.synthetic import no_dependence_loop


class TestOffsetArray:
    def test_window_indexing(self):
        array = OffsetArray.from_window([-3, 0], [3, 4])
        array[-3, 0] = 7.0
        array[3, 4] = 9.0
        assert array[-3, 0] == 7.0
        assert array[3, 4] == 9.0
        assert array.shape == (7, 5)

    def test_one_dimensional(self):
        array = OffsetArray.from_window([-5], [5])
        array[-5] = 1.0
        assert array[-5] == 1.0

    def test_out_of_window_raises(self):
        array = OffsetArray.from_window([0, 0], [2, 2])
        with pytest.raises(ExecutionError):
            array[3, 0]
        with pytest.raises(ExecutionError):
            array[0, -1] = 1.0

    def test_wrong_arity_raises(self):
        array = OffsetArray.from_window([0, 0], [2, 2])
        with pytest.raises(ExecutionError):
            array[0]

    def test_empty_window_rejected(self):
        with pytest.raises(ExecutionError):
            OffsetArray.from_window([0], [-1])

    def test_origin_shape_mismatch(self):
        with pytest.raises(ExecutionError):
            OffsetArray([0, 0], [3])

    def test_copy_independent(self):
        array = OffsetArray.from_window([0], [3])
        clone = array.copy()
        clone[0] = 5.0
        assert array[0] == 0.0
        assert clone[0] == 5.0

    def test_allclose_and_difference(self):
        a = OffsetArray.from_window([0], [3])
        b = a.copy()
        assert a.allclose(b)
        b[2] = 1e-3
        assert not a.allclose(b)
        assert a.max_abs_difference(b) == pytest.approx(1e-3)


class TestArrayStore:
    def test_copy_and_compare(self):
        store = ArrayStore()
        store["A"] = OffsetArray.from_window([0, 0], [3, 3])
        clone = store.copy()
        clone["A"][1, 1] = 2.0
        assert not store.allclose(clone)
        assert store.max_abs_difference(clone) == pytest.approx(2.0)

    def test_mismatched_keys(self):
        a = ArrayStore()
        b = ArrayStore()
        a["A"] = OffsetArray.from_window([0], [1])
        assert not a.allclose(b)
        assert a.max_abs_difference(b) == float("inf")


class TestStoreForNest:
    def test_window_covers_all_accesses(self, ex41_small):
        store = store_for_nest(ex41_small)
        # executing must never raise an out-of-window error
        from repro.runtime.interpreter import execute_nest

        execute_nest(ex41_small, store)

    def test_initializers(self):
        nest = no_dependence_loop(3)
        zeros = store_for_nest(nest, initializer="zeros")
        assert float(np.sum(np.abs(zeros["B"].data))) == 0.0
        index_sum = store_for_nest(nest, initializer="index_sum")
        assert index_sum["B"][2, 3] == pytest.approx(5.0)
        random_a = store_for_nest(nest, initializer="random", seed=1)
        random_b = store_for_nest(nest, initializer="random", seed=1)
        assert random_a.allclose(random_b)

    def test_unknown_initializer(self):
        with pytest.raises(ExecutionError):
            store_for_nest(no_dependence_loop(2), initializer="bogus")

    def test_arrays_present(self, ex41_small):
        store = store_for_nest(ex41_small)
        assert set(store.keys()) == {"A"}
