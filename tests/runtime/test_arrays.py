"""Tests for the runtime array store."""

import time

import numpy as np
import pytest

from repro.exceptions import ExecutionError
from repro.loopnest.builder import loop_nest
from repro.runtime.arrays import (
    ArrayStore,
    OffsetArray,
    _closed_form_windows,
    store_for_nest,
)
from repro.workloads.paper_examples import example_4_1, example_4_2
from repro.workloads.synthetic import no_dependence_loop, variable_distance_loop


def enumerated_windows(nest):
    """Reference window computation: walk every iteration (the slow path)."""
    windows = {}
    for iteration in nest.iterations():
        env = nest.env_for(iteration)
        for ref in nest.references():
            values = ref.subscript_values(env)
            lows, highs = windows.setdefault(
                ref.array, ([int(v) for v in values], [int(v) for v in values])
            )
            for k, value in enumerate(values):
                lows[k] = min(lows[k], int(value))
                highs[k] = max(highs[k], int(value))
    return windows


class TestOffsetArray:
    def test_window_indexing(self):
        array = OffsetArray.from_window([-3, 0], [3, 4])
        array[-3, 0] = 7.0
        array[3, 4] = 9.0
        assert array[-3, 0] == 7.0
        assert array[3, 4] == 9.0
        assert array.shape == (7, 5)

    def test_one_dimensional(self):
        array = OffsetArray.from_window([-5], [5])
        array[-5] = 1.0
        assert array[-5] == 1.0

    def test_out_of_window_raises(self):
        array = OffsetArray.from_window([0, 0], [2, 2])
        with pytest.raises(ExecutionError):
            array[3, 0]
        with pytest.raises(ExecutionError):
            array[0, -1] = 1.0

    def test_wrong_arity_raises(self):
        array = OffsetArray.from_window([0, 0], [2, 2])
        with pytest.raises(ExecutionError):
            array[0]

    def test_empty_window_rejected(self):
        with pytest.raises(ExecutionError):
            OffsetArray.from_window([0], [-1])

    def test_origin_shape_mismatch(self):
        with pytest.raises(ExecutionError):
            OffsetArray([0, 0], [3])

    def test_copy_independent(self):
        array = OffsetArray.from_window([0], [3])
        clone = array.copy()
        clone[0] = 5.0
        assert array[0] == 0.0
        assert clone[0] == 5.0

    def test_allclose_and_difference(self):
        a = OffsetArray.from_window([0], [3])
        b = a.copy()
        assert a.allclose(b)
        b[2] = 1e-3
        assert not a.allclose(b)
        assert a.max_abs_difference(b) == pytest.approx(1e-3)


class TestArrayStore:
    def test_copy_and_compare(self):
        store = ArrayStore()
        store["A"] = OffsetArray.from_window([0, 0], [3, 3])
        clone = store.copy()
        clone["A"][1, 1] = 2.0
        assert not store.allclose(clone)
        assert store.max_abs_difference(clone) == pytest.approx(2.0)

    def test_mismatched_keys(self):
        a = ArrayStore()
        b = ArrayStore()
        a["A"] = OffsetArray.from_window([0], [1])
        assert not a.allclose(b)
        assert a.max_abs_difference(b) == float("inf")


class TestStoreForNest:
    def test_window_covers_all_accesses(self, ex41_small):
        store = store_for_nest(ex41_small)
        # executing must never raise an out-of-window error
        from repro.runtime.interpreter import execute_nest

        execute_nest(ex41_small, store)

    def test_initializers(self):
        nest = no_dependence_loop(3)
        zeros = store_for_nest(nest, initializer="zeros")
        assert float(np.sum(np.abs(zeros["B"].data))) == 0.0
        index_sum = store_for_nest(nest, initializer="index_sum")
        assert index_sum["B"][2, 3] == pytest.approx(5.0)
        random_a = store_for_nest(nest, initializer="random", seed=1)
        random_b = store_for_nest(nest, initializer="random", seed=1)
        assert random_a.allclose(random_b)

    def test_unknown_initializer(self):
        with pytest.raises(ExecutionError):
            store_for_nest(no_dependence_loop(2), initializer="bogus")

    def test_arrays_present(self, ex41_small):
        store = store_for_nest(ex41_small)
        assert set(store.keys()) == {"A"}


class TestClosedFormWindows:
    """Rectangular nests compute windows in closed form, never enumerating."""

    @pytest.mark.parametrize(
        "make_nest",
        [
            lambda: example_4_1(9),
            lambda: example_4_2(7),
            lambda: variable_distance_loop(8),
            lambda: no_dependence_loop(6),
            # Negative coefficients flip which corner attains each extremum.
            lambda: (
                loop_nest("mirror")
                .loop("i1", 2, 9)
                .loop("i2", -3, 5)
                .statement("A[10 - 2*i1, -i2 + i1] = A[-i1, 3*i2 - 7] + 1.0")
                .build()
            ),
        ],
    )
    def test_matches_enumeration(self, make_nest):
        nest = make_nest()
        assert nest.is_rectangular
        assert _closed_form_windows(nest) == enumerated_windows(nest)

    def test_store_identical_to_enumerated_store(self):
        nest = example_4_1(9)
        closed = store_for_nest(nest)
        windows = enumerated_windows(nest)
        assert set(closed.keys()) == set(windows.keys())
        for array, (lows, highs) in windows.items():
            margin_lows = [lo - 4 for lo in lows]
            assert closed[array].origin == tuple(margin_lows)
            assert closed[array].shape == tuple(
                hi - lo + 9 for lo, hi in zip(lows, highs)
            )

    def test_empty_iteration_space_has_no_arrays(self):
        nest = (
            loop_nest("empty")
            .loop("i1", 5, 4)
            .statement("A[i1] = A[i1 - 1] + 1.0")
            .build()
        )
        assert store_for_nest(nest) == {}

    def test_non_rectangular_falls_back_to_enumeration(self):
        nest = (
            loop_nest("triangle")
            .loop("i1", 0, 6)
            .loop("i2", 0, "i1")
            .statement("A[i1, i2] = A[i1 - 1, i2] + 1.0")
            .build()
        )
        assert not nest.is_rectangular
        store = store_for_nest(nest, margin=0)
        # The triangular space only reaches i2 = i1, so the window is exact,
        # not the bounding box a closed-form evaluation would give.
        assert store["A"].origin == (-1, 0)
        assert store["A"].shape == (8, 7)

    def test_large_nest_builds_without_enumeration(self):
        # 1024 x 1024 = ~1M iterations: enumeration takes tens of seconds,
        # the closed form is O(references).
        nest = example_4_1(1024)
        started = time.perf_counter()
        store = store_for_nest(nest, initializer="zeros")
        assert time.perf_counter() - started < 2.0
        assert set(store.keys()) == {"A"}
