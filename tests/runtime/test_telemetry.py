"""The feedback-driven scheduling loop: telemetry store + cost-aware LPT.

Three contracts pinned here:

* the :class:`ExecutionTelemetry` cost model itself (EWMA folding,
  proportional attribution of group wall clock, cold fallback, LRU bound);
* **bit-identical results across balancing policies**: telemetry-driven
  grouping only changes which worker runs which chunk, so every executor
  mode produces exactly the serial reference store whether the program is
  cold (size-based LPT) or warm with arbitrary measured costs;
* **better makespans on skewed costs**: when measured per-chunk costs
  disagree with the closed-form sizes (a big-but-cheap chunk), cost-aware
  grouping must beat size-based grouping by ≥ 1.2x on the synthetic
  workload below — the acceptance bar of the feedback loop.
"""

import numpy as np
import pytest

from repro.codegen.transformed_nest import TransformedLoopNest
from repro.core.pipeline import analyze_nest
from repro.runtime.arrays import store_for_nest
from repro.runtime.executor import ParallelExecutor
from repro.runtime.interpreter import execute_nest
from repro.runtime.telemetry import ExecutionTelemetry, makespan
from repro.workloads.paper_examples import example_4_1
from repro.workloads.synthetic import no_dependence_loop, variable_distance_loop


def _transformed(nest):
    return TransformedLoopNest.from_report(analyze_nest(nest))


# --------------------------------------------------------------------------- #
# the cost model
# --------------------------------------------------------------------------- #
class TestExecutionTelemetry:
    def test_cold_program_returns_none(self):
        telemetry = ExecutionTelemetry()
        assert telemetry.chunk_costs("prog:4", (10, 10, 10, 10)) is None

    def test_singleton_observations_are_exact(self):
        telemetry = ExecutionTelemetry(alpha=1.0)
        telemetry.record_group("p:2", (0,), (10,), 0.5)
        telemetry.record_group("p:2", (1,), (10,), 1.5)
        assert telemetry.chunk_costs("p:2", (10, 10)) == [0.5, 1.5]

    def test_ewma_folds_newest_observation(self):
        telemetry = ExecutionTelemetry(alpha=0.5)
        telemetry.record_group("p:1", (0,), (10,), 1.0)
        telemetry.record_group("p:1", (0,), (10,), 3.0)
        # 0.5 * 1.0 + 0.5 * 3.0
        assert telemetry.chunk_costs("p:1", (10,)) == [2.0]

    def test_group_time_split_proportionally_to_size_when_cold(self):
        telemetry = ExecutionTelemetry(alpha=1.0)
        telemetry.record_group("p:2", (0, 1), (30, 10), 4.0)
        assert telemetry.chunk_costs("p:2", (30, 10)) == [3.0, 1.0]

    def test_unobserved_chunk_estimated_at_program_rate(self):
        telemetry = ExecutionTelemetry(alpha=1.0)
        # 20 iterations in 2 s -> 0.1 s/iteration.
        telemetry.record_group("p:3", (0,), (20,), 2.0)
        costs = telemetry.chunk_costs("p:3", (20, 5, 10))
        assert costs == pytest.approx([2.0, 0.5, 1.0])

    def test_known_costs_weight_later_group_splits(self):
        telemetry = ExecutionTelemetry(alpha=1.0)
        telemetry.record_group("p:2", (0,), (10,), 3.0)
        telemetry.record_group("p:2", (1,), (10,), 1.0)
        # A joint observation splits 4 s by the known 3:1 costs, not 1:1.
        telemetry.record_group("p:2", (0, 1), (10, 10), 4.0)
        assert telemetry.chunk_costs("p:2", (10, 10)) == [3.0, 1.0]

    def test_observation_counters(self):
        telemetry = ExecutionTelemetry()
        assert telemetry.observations("p:1") == 0
        telemetry.record_group("p:1", (0,), (5,), 0.1)
        telemetry.record_group("p:1", (0,), (5,), 0.1)
        assert telemetry.observations("p:1") == 2
        snap = telemetry.snapshot()
        assert snap == {"programs": 1, "observations": 2, "chunks_profiled": 1}

    def test_lru_bound_evicts_oldest_program(self):
        telemetry = ExecutionTelemetry(max_programs=2)
        telemetry.record_group("a:1", (0,), (5,), 0.1)
        telemetry.record_group("b:1", (0,), (5,), 0.1)
        telemetry.record_group("c:1", (0,), (5,), 0.1)
        assert len(telemetry) == 2
        assert telemetry.chunk_costs("a:1", (5,)) is None
        assert telemetry.chunk_costs("c:1", (5,)) is not None

    def test_query_refreshes_lru_position(self):
        telemetry = ExecutionTelemetry(max_programs=2)
        telemetry.record_group("a:1", (0,), (5,), 0.1)
        telemetry.record_group("b:1", (0,), (5,), 0.1)
        telemetry.chunk_costs("a:1", (5,))  # touch a -> b is now oldest
        telemetry.record_group("c:1", (0,), (5,), 0.1)
        assert telemetry.chunk_costs("a:1", (5,)) is not None
        assert telemetry.chunk_costs("b:1", (5,)) is None

    def test_clear(self):
        telemetry = ExecutionTelemetry()
        telemetry.record_group("a:1", (0,), (5,), 0.1)
        telemetry.clear()
        assert len(telemetry) == 0

    def test_empty_or_negative_observations_ignored(self):
        telemetry = ExecutionTelemetry()
        telemetry.record_group("a:1", (), (), 1.0)
        telemetry.record_group("a:1", (0,), (5,), -1.0)
        assert telemetry.chunk_costs("a:1", (5,)) is None

    def test_mismatched_lengths_rejected(self):
        telemetry = ExecutionTelemetry()
        with pytest.raises(ValueError):
            telemetry.record_group("a:1", (0, 1), (5,), 1.0)

    @pytest.mark.parametrize("alpha", [0.0, -0.5, 1.5])
    def test_invalid_alpha_rejected(self, alpha):
        with pytest.raises(ValueError):
            ExecutionTelemetry(alpha=alpha)

    def test_invalid_max_programs_rejected(self):
        with pytest.raises(ValueError):
            ExecutionTelemetry(max_programs=0)

    def test_invalid_max_chunks_rejected(self):
        with pytest.raises(ValueError):
            ExecutionTelemetry(max_chunks=0)

    def test_plans_beyond_max_chunks_stay_cold(self):
        # Per-chunk attribution over huge plans is noise, and the O(chunks)
        # recording loop would dominate the execution it measures: such
        # plans are never profiled and always read back cold.
        telemetry = ExecutionTelemetry(max_chunks=3)
        telemetry.record_group("big:4", (0, 1, 2, 3), (5, 5, 5, 5), 1.0)
        assert telemetry.chunk_costs("big:4", (5, 5, 5, 5)) is None
        assert telemetry.observations("big:4") == 0
        telemetry.record_group("ok:3", (0, 1, 2), (5, 5, 5), 1.0)
        assert telemetry.chunk_costs("ok:3", (5, 5, 5)) is not None

    def test_makespan_helper(self):
        assert makespan([], [1.0]) == 0.0
        assert makespan([(0, 2), (1,)], [1.0, 5.0, 2.0]) == 5.0


# --------------------------------------------------------------------------- #
# the executor integration
# --------------------------------------------------------------------------- #
class TestGroupsFor:
    def test_cold_key_matches_size_based_grouping(self):
        executor = ParallelExecutor(mode="threads", workers=3)
        sizes = (9, 7, 5, 3)
        assert executor.groups_for(sizes, "cold:4") == executor._balanced_groups(sizes)

    def test_none_key_matches_size_based_grouping(self):
        executor = ParallelExecutor(mode="threads", workers=3)
        sizes = (9, 7, 5, 3)
        assert executor.groups_for(sizes, None) == executor._balanced_groups(sizes)

    def test_warm_key_balances_by_measured_cost(self):
        executor = ParallelExecutor(mode="threads", workers=2)
        key = "warm:3"
        # Chunk 0 is big but cheap; chunks 1 and 2 small but expensive.
        for index, size, cost in [(0, 10, 1.0), (1, 6, 6.0), (2, 5, 5.0)]:
            executor.telemetry.record_group(key, (index,), (size,), cost)
        warm = executor.groups_for((10, 6, 5), key)
        cold = executor._balanced_groups((10, 6, 5))
        assert warm != cold
        loads = sorted(
            sum([1.0, 6.0, 5.0][i] for i in group) for group in warm
        )
        assert loads == [6.0, 6.0]

    def test_workers_override(self):
        executor = ParallelExecutor(mode="threads", workers=2)
        assert len(executor.groups_for((4, 3, 2, 1), workers=4)) == 4

    def test_telemetry_key_stable_and_chunk_count_scoped(self, ex41_small):
        executor = ParallelExecutor()
        transformed = _transformed(ex41_small)
        key_a = executor.telemetry_key(transformed, 8)
        key_b = executor.telemetry_key(transformed, 8)
        key_c = executor.telemetry_key(transformed, 4)
        assert key_a == key_b
        assert key_a != key_c

    def test_skewed_costs_beat_size_grouping_by_1_2x(self):
        """Acceptance bar: ≥ 1.2x better makespan on skewed per-chunk costs."""
        executor = ParallelExecutor(mode="threads", workers=2)
        key = "skew:3"
        sizes = (10, 6, 5)
        true_costs = [1.0, 6.0, 5.0]
        for index, (size, cost) in enumerate(zip(sizes, true_costs)):
            executor.telemetry.record_group(key, (index,), (size,), cost)
        size_groups = executor._balanced_groups(sizes)
        cost_groups = executor.groups_for(sizes, key)
        size_makespan = makespan(size_groups, true_costs)
        cost_makespan = makespan(cost_groups, true_costs)
        assert size_makespan / cost_makespan >= 1.2


# --------------------------------------------------------------------------- #
# recording through real executions
# --------------------------------------------------------------------------- #
class TestRecordingPaths:
    @pytest.mark.parametrize("mode", ["serial", "threads"])
    def test_plan_driven_runs_feed_telemetry(self, mode, ex41_small):
        transformed = _transformed(ex41_small)
        with ParallelExecutor(mode=mode, workers=2, backend="compiled") as executor:
            executor.run(transformed, store_for_nest(ex41_small))
            key = executor.telemetry_key(
                transformed, len(transformed.execution_plan().chunk_sizes())
            )
            assert executor.telemetry.observations(key) > 0

    def test_legacy_chunk_runs_do_not_feed_telemetry(self, ex41_small):
        from repro.codegen.schedule import build_schedule

        transformed = _transformed(ex41_small)
        chunks = build_schedule(transformed)
        with ParallelExecutor(mode="serial", backend="compiled") as executor:
            executor.run(transformed, store_for_nest(ex41_small), chunks=chunks)
            assert len(executor.telemetry) == 0

    def test_injected_store_is_shared(self, ex41_small):
        telemetry = ExecutionTelemetry()
        transformed = _transformed(ex41_small)
        with ParallelExecutor(mode="serial", backend="compiled",
                              telemetry=telemetry) as executor:
            assert executor.telemetry is telemetry
            executor.run(transformed, store_for_nest(ex41_small))
        assert len(telemetry) == 1


# --------------------------------------------------------------------------- #
# bit-identical results across balancing policies, every mode
# --------------------------------------------------------------------------- #
NESTS = [
    ("example_4_1", lambda: example_4_1(8)),
    ("variable_distance", lambda: variable_distance_loop(8)),
    ("independent", lambda: no_dependence_loop(6)),
]


def _skewed_telemetry(executor, transformed, chunk_sizes):
    """Seed measured costs that disagree maximally with the sizes."""
    key = executor.telemetry_key(transformed, len(chunk_sizes))
    for index, size in enumerate(chunk_sizes):
        # Reverse the size order: big chunks get tiny costs and vice versa.
        cost = float(max(chunk_sizes) - size + 1)
        executor.telemetry.record_group(key, (index,), (size,), cost)
    return key


@pytest.mark.parametrize("nest_name,make_nest", NESTS, ids=[n for n, _ in NESTS])
@pytest.mark.parametrize("mode", ["serial", "threads", "processes", "shared"])
def test_bit_identical_across_policies_all_modes(nest_name, make_nest, mode):
    """Cold (size-LPT), warm (measured-cost LPT) and adversarially skewed
    telemetry all produce exactly the interpreter reference store."""
    nest = make_nest()
    transformed = _transformed(nest)
    plan = transformed.execution_plan()
    chunk_sizes = tuple(plan.chunk_sizes())

    reference = store_for_nest(nest)
    execute_nest(nest, reference)

    with ParallelExecutor(mode=mode, workers=3, backend="compiled") as executor:
        # Cold run: size-based grouping (the old behavior).
        cold = store_for_nest(nest)
        executor.run(transformed, cold, plan=plan)
        # Warm run: grouping now driven by the costs the cold run recorded.
        warm = store_for_nest(nest)
        executor.run(transformed, warm, plan=plan)
        # Adversarial: measured costs anti-correlated with sizes.
        _skewed_telemetry(executor, transformed, chunk_sizes)
        skewed = store_for_nest(nest)
        executor.run(transformed, skewed, plan=plan)

    for store in (cold, warm, skewed):
        assert set(store.keys()) == set(reference.keys())
        for name in reference.keys():
            np.testing.assert_array_equal(store[name].data, reference[name].data)
