"""Tests for the loop interpreter, parallel executors and the simulator."""

import pytest

from repro.codegen.schedule import Chunk, build_schedule
from repro.codegen.transformed_nest import TransformedLoopNest
from repro.core.pipeline import analyze_nest
from repro.exceptions import ExecutionError
from repro.loopnest.builder import loop_nest
from repro.runtime.arrays import store_for_nest
from repro.runtime.executor import ParallelExecutor
from repro.runtime.interpreter import (
    execute_chunk,
    execute_nest,
    execute_schedule,
    execute_transformed,
)
from repro.runtime.simulator import SimulatedMachine, simulate_schedule
from repro.workloads.paper_examples import example_4_1, example_4_2


class TestInterpreter:
    def test_simple_accumulation(self):
        nest = (
            loop_nest("acc")
            .loop("i", 1, 4)
            .statement("A[i] = A[i - 1] + 1.0")
            .build()
        )
        store = store_for_nest(nest, initializer="zeros")
        store["A"][0] = 0.0
        execute_nest(nest, store)
        assert store["A"][4] == pytest.approx(4.0)

    def test_statement_order_within_iteration(self):
        nest = (
            loop_nest("order")
            .loop("i", 0, 3)
            .statement("A[i] = 2.0")
            .statement("B[i] = A[i] * 3.0")
            .build()
        )
        store = store_for_nest(nest, initializer="zeros")
        execute_nest(nest, store)
        assert store["B"][2] == pytest.approx(6.0)

    def test_iteration_budget(self, ex41_small):
        store = store_for_nest(ex41_small)
        with pytest.raises(ExecutionError):
            execute_nest(ex41_small, store, max_iterations=5)

    def test_transformed_orders_agree(self, ex41_report):
        transformed = TransformedLoopNest.from_report(ex41_report)
        base = store_for_nest(ex41_report.nest)
        reference = base.copy()
        execute_nest(ex41_report.nest, reference)
        for order in ("lexicographic", "chunks"):
            result = base.copy()
            execute_transformed(transformed, result, order=order)
            assert reference.allclose(result)

    def test_transformed_unknown_order(self, ex41_report):
        transformed = TransformedLoopNest.from_report(ex41_report)
        with pytest.raises(ExecutionError):
            execute_transformed(transformed, store_for_nest(ex41_report.nest), order="random")

    def test_execute_chunk_returns_writes(self, ex42_report):
        transformed = TransformedLoopNest.from_report(ex42_report)
        chunks = build_schedule(transformed)
        store = store_for_nest(ex42_report.nest)
        writes = execute_chunk(transformed, chunks[0], store)
        assert writes
        array, location, value = writes[0]
        assert array in ("A", "B")
        assert store[array][location] == pytest.approx(value)

    def test_execute_schedule_equals_reference(self, ex42_report):
        transformed = TransformedLoopNest.from_report(ex42_report)
        chunks = build_schedule(transformed)
        base = store_for_nest(ex42_report.nest)
        reference = base.copy()
        execute_nest(ex42_report.nest, reference)
        result = base.copy()
        execute_schedule(transformed, chunks, result)
        assert reference.allclose(result)


class TestParallelExecutor:
    @pytest.mark.parametrize("mode", ["serial", "threads"])
    def test_modes_match_reference(self, mode, ex41_report):
        nest = ex41_report.nest
        transformed = TransformedLoopNest.from_report(ex41_report)
        base = store_for_nest(nest)
        reference = base.copy()
        execute_nest(nest, reference)
        result = base.copy()
        outcome = ParallelExecutor(mode=mode, workers=4).run(transformed, result)
        assert reference.allclose(result)
        assert outcome.num_chunks > 1
        assert outcome.total_iterations == nest.iteration_count()
        assert outcome.elapsed_seconds >= 0.0

    def test_process_mode_matches_reference(self, ex42_small):
        report = analyze_nest(example_4_2(4))
        nest = report.nest
        transformed = TransformedLoopNest.from_report(report)
        base = store_for_nest(nest)
        reference = base.copy()
        execute_nest(nest, reference)
        result = base.copy()
        ParallelExecutor(mode="processes", workers=2).run(transformed, result)
        assert reference.allclose(result)

    def test_invalid_mode(self):
        with pytest.raises(ExecutionError):
            ParallelExecutor(mode="gpu")

    def test_explicit_chunk_list(self, ex41_report):
        transformed = TransformedLoopNest.from_report(ex41_report)
        chunks = build_schedule(transformed)
        store = store_for_nest(ex41_report.nest)
        outcome = ParallelExecutor(mode="serial").run(transformed, store, chunks=chunks)
        assert outcome.num_chunks == len(chunks)


class TestSimulator:
    def _chunks(self, sizes):
        return [Chunk(key=(k,), iterations=[(i,) for i in range(size)]) for k, size in enumerate(sizes)]

    def test_makespan_lpt(self):
        machine = SimulatedMachine(2)
        chunks = self._chunks([5, 3, 3, 1])
        assert machine.makespan(chunks) == 6.0

    def test_speedup_and_efficiency(self):
        result = simulate_schedule(self._chunks([4, 4, 4, 4]), num_processors=4)
        assert result.speedup == pytest.approx(4.0)
        assert result.efficiency == pytest.approx(1.0)

    def test_unlimited_processors_default(self):
        result = simulate_schedule(self._chunks([2, 2, 2]))
        assert result.num_processors == 3
        assert result.speedup == pytest.approx(3.0)

    def test_serial_schedule(self):
        result = simulate_schedule(self._chunks([10]), num_processors=8)
        assert result.speedup == pytest.approx(1.0)

    def test_empty_schedule(self):
        result = simulate_schedule([], num_processors=2)
        assert result.parallel_time == 0.0
        assert result.speedup == 1.0

    def test_chunk_overhead(self):
        with_overhead = simulate_schedule(self._chunks([4, 4]), num_processors=2, chunk_overhead=1.0)
        assert with_overhead.sequential_time == 10.0

    def test_invalid_processor_count(self):
        with pytest.raises(ValueError):
            SimulatedMachine(0)

    def test_describe(self):
        text = simulate_schedule(self._chunks([2, 2]), num_processors=2).describe()
        assert "speedup" in text

    def test_paper_example_speedup_scales_with_partitions(self):
        # example 4.2: 4 partitions -> speedup close to 4 with 4 processors
        report = analyze_nest(example_4_2(8))
        transformed = TransformedLoopNest.from_report(report)
        chunks = build_schedule(transformed)
        result = simulate_schedule(chunks, num_processors=4)
        assert result.speedup > 3.0
