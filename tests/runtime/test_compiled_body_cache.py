"""CompiledBackend body cache: canonical keying, bounded LRU, correctness.

Before this cache was keyed canonically it grew one compiled body per nest
*object* — a long-running ``BatchService`` process serving arbitrary traffic
would leak compiled code forever.  Now bodies are shared across
alpha-renamed copies of one program, the LRU is bounded by
``body_cache_limit``, and the int-vs-float constant signature keeps
``//``/``%``/``**`` semantics exact even though the canonical key
normalizes constants to floats.
"""

import pytest

from repro.codegen.transformed_nest import TransformedLoopNest
from repro.core.pipeline import analyze_nest
from repro.loopnest.builder import loop_nest
from repro.loopnest.canonical import (
    canonical_key_tuple,
    constant_kind_signature,
    positional_rename,
)
from repro.runtime.arrays import store_for_nest
from repro.runtime.backends import CompiledBackend
from repro.runtime.interpreter import execute_nest
from repro.workloads.paper_examples import example_4_1


@pytest.fixture(autouse=True)
def clean_cache():
    CompiledBackend.clear_body_cache()
    yield
    CompiledBackend.clear_body_cache()


def _run_compiled(nest):
    base = store_for_nest(nest)
    ref = base.copy()
    execute_nest(nest, ref)
    transformed = TransformedLoopNest.from_report(analyze_nest(nest))
    result = base.copy()
    CompiledBackend().execute(transformed, result)
    assert ref.identical(result), nest.name
    return result


def _recurrence(index, array, scale="0.5"):
    return (
        loop_nest(f"body-{index}-{array}")
        .loop(index, 1, 8)
        .statement(f"{array}[{index}] = {array}[{index} - 1] * {scale} + 2.0")
        .build()
    )


class TestCanonicalSharing:
    def test_alpha_renamed_nests_share_one_body(self):
        first = _recurrence("i1", "A")
        second = _recurrence("k1", "Z")
        assert canonical_key_tuple(first) == canonical_key_tuple(second)
        _run_compiled(first)
        _run_compiled(second)
        info = CompiledBackend.body_cache_info()
        assert info["size"] == 1
        assert info["misses"] == 1
        assert info["hits"] >= 1

    def test_same_nest_object_uses_weak_fast_path(self):
        nest = _recurrence("i1", "A")
        first = CompiledBackend.body_function(nest)
        hits_before = CompiledBackend.body_cache_info()["hits"]
        # The second lookup must come from the per-object weak map, not the
        # keyed LRU (no hit recorded, same function object).
        assert CompiledBackend.body_function(nest) is first
        assert CompiledBackend.body_cache_info()["hits"] == hits_before

    def test_int_float_constants_get_distinct_bodies(self):
        # 7 // 2 == 3 but 7.0 // 2 == 3.0 — int-vs-float constants must not
        # collapse onto one compiled body even though the canonical key
        # (which float-normalizes constants) is identical.
        int_nest = (
            loop_nest("int-const")
            .loop("i1", 1, 6)
            .statement("A[i1] = B[i1] + 7 // 2")
            .build()
        )
        float_nest = (
            loop_nest("float-const")
            .loop("i1", 1, 6)
            .statement("A[i1] = B[i1] + 7.0 // 2")
            .build()
        )
        assert canonical_key_tuple(int_nest) == canonical_key_tuple(float_nest)
        assert constant_kind_signature(int_nest) != constant_kind_signature(float_nest)
        _run_compiled(int_nest)
        _run_compiled(float_nest)
        assert CompiledBackend.body_cache_info()["size"] == 2

    def test_positional_rename_keeps_constant_types(self):
        nest = (
            loop_nest("typed")
            .loop("i1", 1, 6)
            .statement("A[i1] = B[i1] + 7 // 2 + 0.25")
            .build()
        )
        renamed = positional_rename(nest)
        assert constant_kind_signature(renamed) == constant_kind_signature(nest)
        assert canonical_key_tuple(renamed) == canonical_key_tuple(nest)


class TestBoundedLRU:
    def test_eviction_at_limit(self, monkeypatch):
        monkeypatch.setattr(CompiledBackend, "body_cache_limit", 2)
        nests = [
            (
                loop_nest(f"distinct-{k}")
                .loop("i1", 1, 6)
                .statement(f"A[i1] = A[i1 - 1] + {float(k + 1)}")
                .build()
            )
            for k in range(4)
        ]
        for nest in nests:
            _run_compiled(nest)
        info = CompiledBackend.body_cache_info()
        assert info["size"] == 2
        assert info["evictions"] == 2
        assert info["misses"] == 4

    def test_evicted_body_recompiles_and_stays_correct(self, monkeypatch):
        monkeypatch.setattr(CompiledBackend, "body_cache_limit", 1)
        first = _recurrence("i1", "A", scale="0.5")
        second = _recurrence("i1", "A", scale="0.25")
        _run_compiled(first)
        _run_compiled(second)  # evicts first's body
        CompiledBackend._nest_bodies.pop(first, None)  # drop the weak fast path
        _run_compiled(first)  # recompiles, still bit-identical
        assert CompiledBackend.body_cache_info()["evictions"] >= 2

    def test_lru_order_is_recency(self, monkeypatch):
        monkeypatch.setattr(CompiledBackend, "body_cache_limit", 2)
        a = _recurrence("i1", "A", scale="0.5")
        b = _recurrence("i1", "A", scale="0.25")
        c = _recurrence("i1", "A", scale="0.75")
        for nest in (a, b):
            CompiledBackend.body_function(nest)
        key_a = (canonical_key_tuple(a), constant_kind_signature(a))
        CompiledBackend._nest_bodies.pop(a, None)
        CompiledBackend.body_function(a)  # refresh recency of a via the LRU
        CompiledBackend.body_function(c)  # must evict b, not a
        assert key_a in CompiledBackend._body_lru


class TestRemapCorrectness:
    def test_remapped_store_keys_execute_correctly(self):
        # The compiled body runs over canonical array names (A0, A1, ...);
        # the wrapper must remap the caller's actual store keys.
        nest = (
            loop_nest("remap")
            .loop("i1", 1, 6)
            .loop("i2", 1, 6)
            .statement("zeta[i1, i2] = alpha[i1 - 1, i2] + zeta[i1, i2 - 1]")
            .build()
        )
        _run_compiled(nest)

    def test_example_nest_unchanged(self):
        _run_compiled(example_4_1(6))
