"""Tests for the zero-copy shared-memory runtime.

Covers the contracts the tentpole design rests on:

* ``SharedArrayStore`` round-trips bit-exactly to/from a plain store, and
  attached views alias the owner's memory;
* ``shared`` executor mode is **bit-identical** to the serial interpreter on
  the workload suite and on seeded random nests, with every backend;
* segments are reference-counted honestly: after ``close``/``unlink`` (and
  after every failure path) nothing is left behind in ``/dev/shm``;
* a worker *crash* falls back cleanly to serial execution on the parent's
  untouched store; a worker-*reported* error propagates like a serial run;
* ``ExecutionResult`` reports setup (pool spin-up, copies) and execution
  time separately — the regression test pinning the timing split.
"""

import glob
import multiprocessing
import os

import numpy as np
import pytest

from repro.codegen.schedule import build_schedule
from repro.codegen.transformed_nest import TransformedLoopNest
from repro.core.pipeline import analyze_nest, parallelize_and_execute
from repro.exceptions import ExecutionError
from repro.loopnest.builder import loop_nest
from repro.runtime.arrays import OffsetArray, store_for_nest
from repro.runtime.backends import (
    ExecutionBackend,
    InterpreterBackend,
    VectorizedBackend,
    get_backend,
)
from repro.runtime.executor import ParallelExecutor
from repro.runtime.interpreter import execute_nest
from repro.runtime.pool import WorkerPool
from repro.runtime.shared import SharedArrayStore, attach_ndarray, share_ndarray
from repro.workloads.paper_examples import example_4_1, example_4_2
from repro.workloads.suite import workload_suite

# Sibling test module (pytest puts this directory on sys.path): reuse the
# seeded random-nest generator so both differential harnesses draw from the
# same distribution.
from test_backend_differential import _random_nest

SUITE = workload_suite(5)
SUITE_IDS = [case.name for case in SUITE]

needs_dev_shm = pytest.mark.skipif(
    not os.path.isdir("/dev/shm"), reason="segment accounting is checked via /dev/shm"
)


def _segments() -> set:
    return set(glob.glob("/dev/shm/psm_*"))


def _reference_and_transformed(nest):
    transformed = TransformedLoopNest.from_report(analyze_nest(nest))
    base = store_for_nest(nest)
    reference = base.copy()
    execute_nest(nest, reference)
    return base, reference, transformed


# ---------------------------------------------------------------------------
# SharedArrayStore
# ---------------------------------------------------------------------------

class TestSharedArrayStore:
    def test_round_trip_is_bit_exact(self):
        store = store_for_nest(example_4_2(5), initializer="random", seed=3)
        shared = SharedArrayStore.from_store(store)
        try:
            assert shared.to_store().identical(store)
            assert shared.identical(store)
        finally:
            shared.close()
            shared.unlink()

    def test_attached_store_aliases_owner_memory(self):
        store = store_for_nest(example_4_2(4))
        with SharedArrayStore.from_store(store) as owner:
            attached = SharedArrayStore.attach(owner.spec)
            try:
                name = next(iter(store))
                origin = store[name].origin
                attached[name][origin] = 123.5
                assert owner[name][origin] == 123.5
            finally:
                attached.close()

    def test_load_and_copy_back(self):
        store = store_for_nest(example_4_2(4))
        with SharedArrayStore.from_store(store) as shared:
            modified = store.copy()
            name = next(iter(modified))
            modified[name].data[...] = 7.25
            shared.load_from(modified)
            out = store.copy()
            shared.copy_to(out)
            assert out.identical(modified)

    def test_layout_mismatch_rejected(self):
        store = store_for_nest(example_4_2(4))
        with SharedArrayStore.from_store(store) as shared:
            other = store.copy()
            other["EXTRA"] = OffsetArray((0,), (3,))
            assert not shared.matches(other)
            with pytest.raises(ExecutionError):
                shared.load_from(other)

    @needs_dev_shm
    def test_close_and_unlink_leave_no_segments(self):
        before = _segments()
        store = store_for_nest(example_4_1(5))
        shared = SharedArrayStore.from_store(store)
        assert len(_segments()) > len(before)
        shared.close()
        shared.unlink()
        assert _segments() == before

    @needs_dev_shm
    def test_share_ndarray_round_trip(self):
        before = _segments()
        array = np.arange(24, dtype=np.int64).reshape(6, 4)
        segment, spec = share_ndarray(array)
        try:
            attached_segment, view = attach_ndarray(spec)
            assert np.array_equal(view, array)
            attached_segment.close()
        finally:
            segment.close()
            segment.unlink()
        assert _segments() == before


# ---------------------------------------------------------------------------
# differential: shared mode vs. the serial interpreter
# ---------------------------------------------------------------------------

class TestSharedModeDifferential:
    @pytest.mark.parametrize("case", SUITE, ids=SUITE_IDS)
    def test_suite_bit_identical(self, shared_executor_factory, case):
        base, reference, transformed = _reference_and_transformed(case.nest)
        executor = shared_executor_factory("compiled")
        result = base.copy()
        executor.run(transformed, result)
        assert reference.identical(result), case.name

    @pytest.mark.parametrize("backend_name", ["interpreter", "compiled", "vectorized"])
    def test_every_backend_through_one_pool(self, case_nests, backend_name):
        with ParallelExecutor(mode="shared", workers=2, backend=backend_name) as executor:
            for nest in case_nests:
                base, reference, transformed = _reference_and_transformed(nest)
                result = base.copy()
                outcome = executor.run(transformed, result)
                assert outcome.mode == "shared"
                assert reference.identical(result), (backend_name, nest.name)

    @pytest.mark.parametrize("seed", range(6))
    def test_random_nests_bit_identical(self, shared_executor_factory, seed):
        nest = _random_nest(np.random.default_rng(200 + seed))
        base, reference, transformed = _reference_and_transformed(nest)
        executor = shared_executor_factory("vectorized")
        result = base.copy()
        executor.run(transformed, result)
        assert reference.identical(result), (seed, nest.name)

    def test_repeated_runs_reuse_segments(self, shared_executor_factory):
        nest = example_4_1(6)
        base, reference, transformed = _reference_and_transformed(nest)
        executor = shared_executor_factory("compiled")
        first = base.copy()
        executor.run(transformed, first)
        generation = executor._shared.spec.token
        second = base.copy()
        executor.run(transformed, second)
        assert executor._shared.spec.token == generation
        assert reference.identical(first) and reference.identical(second)

    def test_unsupported_body_falls_back_inside_workers(self, shared_executor_factory):
        # A schedule too narrow for the vectorized rounds: every worker must
        # delegate to the compiled engine internally and stay bit-identical.
        nest = example_4_2(5)
        base, reference, transformed = _reference_and_transformed(nest)
        executor = shared_executor_factory(VectorizedBackend(min_parallel_width=10**6))
        result = base.copy()
        outcome = executor.run(transformed, result)
        assert outcome.fallback is None
        assert reference.identical(result)

    def test_parallelize_and_execute_shared_mode(self):
        # The deprecated wrapper must still tear down the shared runtime it
        # creates; the module-scoped /dev/shm accounting catches leaks.
        nest = example_4_1(5)
        with pytest.warns(DeprecationWarning):
            report, result = parallelize_and_execute(nest, mode="shared", workers=2)
        reference = store_for_nest(nest)
        execute_nest(nest, reference)
        assert result.mode == "shared"
        assert reference.identical(result.store)


@pytest.fixture()
def case_nests():
    return [case.nest for case in SUITE[:4]]


@pytest.fixture()
def shared_executor_factory():
    executors = []

    def factory(backend):
        executor = ParallelExecutor(mode="shared", workers=2, backend=backend)
        executors.append(executor)
        return executor

    yield factory
    for executor in executors:
        executor.close()


# ---------------------------------------------------------------------------
# failure paths
# ---------------------------------------------------------------------------

class CrashingBackend(ExecutionBackend):
    """Kills the process when executed inside a pool worker.

    In the parent (the serial fallback path) it behaves like the
    interpreter, so a clean fallback still produces correct results.
    """

    name = "crashing"

    def execute(self, transformed, store, chunks=None):
        if multiprocessing.parent_process() is not None:
            os._exit(17)
        return InterpreterBackend().execute(transformed, store, chunks=chunks)

    def execute_chunk(self, transformed, chunk, store):
        InterpreterBackend().execute_chunk(transformed, chunk, store)


class TestFailurePaths:
    @needs_dev_shm
    def test_worker_crash_falls_back_serially_without_leaks(self):
        before = _segments()
        nest = example_4_2(4)
        base, reference, transformed = _reference_and_transformed(nest)
        with ParallelExecutor(mode="shared", workers=2, backend=CrashingBackend()) as executor:
            result = base.copy()
            outcome = executor.run(transformed, result)
            assert outcome.fallback is not None
            assert "crash" in outcome.fallback
            assert reference.identical(result)
            # The pool was discarded; a later run builds a fresh one and the
            # executor keeps working (here with a healthy backend).
            executor.backend = get_backend("compiled")
            again = base.copy()
            outcome = executor.run(transformed, again)
            assert outcome.fallback is None
            assert reference.identical(again)
        assert _segments() == before

    @needs_dev_shm
    def test_worker_error_propagates_like_serial(self):
        # 1.0 / i2 hits i2 == 0 inside a worker; the parent must raise the
        # same class of failure a serial run raises, and clean up segments.
        before = _segments()
        nest = (
            loop_nest("divzero")
            .loop("i1", 0, 4)
            .loop("i2", -2, 2)
            .statement("A[i1, i2] = B[i1, i2] + 1.0 / (i2)")
            .build()
        )
        store = store_for_nest(nest)
        transformed = TransformedLoopNest.from_report(analyze_nest(nest))
        with ParallelExecutor(mode="shared", workers=2, backend="interpreter") as executor:
            with pytest.raises(ExecutionError, match="ZeroDivisionError"):
                executor.run(transformed, store.copy())
        assert _segments() == before

    @needs_dev_shm
    def test_executor_close_is_idempotent_and_clean(self):
        before = _segments()
        nest = example_4_2(4)
        base, _, transformed = _reference_and_transformed(nest)
        executor = ParallelExecutor(mode="shared", workers=2, backend="compiled")
        executor.run(transformed, base.copy())
        executor.close()
        executor.close()
        assert _segments() == before

    def test_pool_rejects_use_after_close(self):
        pool = WorkerPool(workers=1)
        pool.close()
        with pytest.raises(ExecutionError):
            pool.run_job(None, None, [], None, [(0,)])

    def test_run_after_worker_reported_error_is_correct(self):
        # A worker-reported error must leave the executor reusable: run_job
        # drains every group of the failed job before raising, so the next
        # run — which reuses the same store layout and therefore the same
        # shared segments — cannot race stale writes.  Both nests touch the
        # same arrays over the same windows; only the first divides by an
        # index that hits zero.
        def build(name, body):
            return (
                loop_nest(name)
                .loop("i1", 0, 4)
                .loop("i2", -2, 2)
                .statement(body)
                .build()
            )

        failing = build("divzero", "A[i1, i2] = B[i1, i2] + 1.0 / (i2)")
        healthy = build("benign", "A[i1, i2] = B[i1, i2] + 1.0")
        failing_t = TransformedLoopNest.from_report(analyze_nest(failing))
        healthy_t = TransformedLoopNest.from_report(analyze_nest(healthy))
        store = store_for_nest(failing)
        reference = store.copy()
        execute_nest(healthy, reference)
        with ParallelExecutor(mode="shared", workers=2, backend="interpreter") as executor:
            with pytest.raises(ExecutionError, match="ZeroDivisionError"):
                executor.run(failing_t, store.copy())
            generation = executor._shared.spec.token
            result = store.copy()
            outcome = executor.run(healthy_t, result)
            assert executor._shared.spec.token == generation  # segments reused
            assert outcome.fallback is None
            assert reference.identical(result)

    def test_program_eviction_resends_to_workers(self):
        # More distinct programs than the parent-side cache holds: evicted
        # programs are explicitly forgotten by the workers and re-registered
        # on their next use, so parent and worker caches never diverge.
        from repro.runtime import pool as pool_module

        nest = example_4_2(3)
        base, reference, _ = _reference_and_transformed(nest)
        programs = [
            (TransformedLoopNest.from_report(analyze_nest(nest)), None)
            for _ in range(pool_module._PARENT_PROGRAM_CACHE + 2)
        ]
        with ParallelExecutor(mode="shared", workers=2, backend="compiled") as executor:
            for transformed, _ in programs:
                result = base.copy()
                executor.run(transformed, result)
                assert reference.identical(result)
            # The first program was evicted along the way; running it again
            # must transparently re-register it.
            result = base.copy()
            executor.run(programs[0][0], result)
            assert reference.identical(result)
            assert len(executor._pool._programs) <= pool_module._PARENT_PROGRAM_CACHE


# ---------------------------------------------------------------------------
# timing split regression
# ---------------------------------------------------------------------------

class TestTimingSplit:
    def test_processes_mode_reports_setup_separately(self):
        # The copy-and-merge pool's spin-up and store copies used to pollute
        # elapsed_seconds; they must now be reported as setup.
        import time

        nest = example_4_2(5)
        base, reference, transformed = _reference_and_transformed(nest)
        executor = ParallelExecutor(mode="processes", workers=2, backend="compiled")
        result = base.copy()
        start = time.perf_counter()
        outcome = executor.run(transformed, result)
        wall = time.perf_counter() - start
        assert reference.identical(result)
        # Pool spin-up alone is milliseconds, so the setup share must be real.
        assert outcome.setup_seconds > 0.0
        assert outcome.elapsed_seconds > 0.0
        assert outcome.total_seconds == pytest.approx(
            outcome.setup_seconds + outcome.elapsed_seconds
        )
        # Neither component can exceed the externally observed wall clock.
        assert outcome.total_seconds <= wall * 1.05
        # The split is the point: execution no longer absorbs the spin-up.
        assert outcome.elapsed_seconds < wall

    def test_serial_mode_setup_is_schedule_building_only(self):
        nest = example_4_2(5)
        base, _, transformed = _reference_and_transformed(nest)
        chunks = build_schedule(transformed)
        outcome = ParallelExecutor(mode="serial", backend="compiled").run(
            transformed, base.copy(), chunks=chunks
        )
        # With a prebuilt schedule there is nothing left to set up.
        assert outcome.setup_seconds < outcome.elapsed_seconds + 1e-3
        assert outcome.total_seconds >= outcome.elapsed_seconds

    def test_shared_mode_reports_split(self, shared_executor_factory):
        nest = example_4_1(5)
        base, _, transformed = _reference_and_transformed(nest)
        executor = shared_executor_factory("compiled")
        outcome = executor.run(transformed, base.copy())
        assert outcome.setup_seconds > 0.0  # pool spin-up + segment load
        assert outcome.elapsed_seconds > 0.0
        warm = executor.run(transformed, base.copy())
        # Warm runs only pay copies: setup collapses once the pool is up.
        assert warm.setup_seconds < outcome.setup_seconds
