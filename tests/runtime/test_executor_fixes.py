"""Regression tests for the executor's scheduling and dispatch fixes.

Three historical bugs, each pinned here:

* chunk→worker grouping used round-robin, ignoring the loads it had
  already dealt — adversarial size distributions left one group with
  nearly twice the work.  Now greedy least-loaded (LPT);
* processes-mode payloads shipped ``store.copy()`` — *every* array, once
  per group — even though a worker only touches the arrays its nest
  references.  Now only the referenced arrays cross the boundary;
* a zero-iteration run reported ``ideal_speedup == 1.0`` ("no
  parallelism") instead of 0.0 ("no work").
"""

import pickle

import numpy as np
import pytest

from repro.codegen.schedule import schedule_statistics
from repro.codegen.transformed_nest import TransformedLoopNest
from repro.core.pipeline import analyze_nest
from repro.runtime.arrays import ArrayStore, OffsetArray, store_for_nest
from repro.runtime.executor import ParallelExecutor, _payload_store
from repro.runtime.interpreter import execute_nest
from repro.workloads.paper_examples import example_4_1


def _transformed(nest):
    return TransformedLoopNest.from_report(analyze_nest(nest))


class TestBalancedGroups:
    def test_adversarial_sizes_balance(self):
        # Round-robin deals 9,5 / 7,3 = 14 vs 10; LPT gives 9,3 / 7,5 = 12 vs 12.
        executor = ParallelExecutor(mode="processes", workers=2)
        groups = executor._balanced_groups([9, 7, 5, 3])
        loads = sorted(sum([9, 7, 5, 3][i] for i in group) for group in groups)
        assert loads == [12, 12]

    def test_descending_runs_do_not_pile_up(self):
        # The classic round-robin killer: strictly descending sizes where
        # consecutive pairs always land on the same worker.
        sizes = [64, 32, 16, 8, 4, 2, 1, 1]
        executor = ParallelExecutor(mode="processes", workers=4)
        groups = executor._balanced_groups(sizes)
        loads = [sum(sizes[i] for i in group) for group in groups]
        # LPT keeps the makespan at the single biggest chunk here.
        assert max(loads) == 64

    def test_every_chunk_assigned_exactly_once(self):
        rng = np.random.default_rng(7)
        sizes = [int(value) for value in rng.integers(1, 100, size=37)]
        executor = ParallelExecutor(mode="processes", workers=5)
        groups = executor._balanced_groups(sizes)
        assigned = sorted(index for group in groups for index in group)
        assert assigned == list(range(len(sizes)))

    def test_deterministic(self):
        sizes = [5, 5, 5, 5, 2, 2]
        executor = ParallelExecutor(mode="processes", workers=3)
        assert executor._balanced_groups(sizes) == executor._balanced_groups(sizes)

    def test_never_worse_than_twice_optimal(self):
        # LPT's 4/3 bound, checked loosely over random instances.
        rng = np.random.default_rng(11)
        for _ in range(20):
            sizes = [int(value) for value in rng.integers(1, 50, size=24)]
            workers = int(rng.integers(2, 6))
            executor = ParallelExecutor(mode="processes", workers=workers)
            groups = executor._balanced_groups(sizes)
            loads = [sum(sizes[i] for i in group) for group in groups]
            lower_bound = max(max(sizes), sum(sizes) / workers)
            assert max(loads) <= 2 * lower_bound


class TestPayloadStore:
    def test_only_referenced_arrays_ship(self):
        nest = example_4_1(12)
        transformed = _transformed(nest)
        store = store_for_nest(nest)
        # An unrelated array the nest never touches must not cross the
        # process boundary.
        store["UNRELATED"] = OffsetArray(origin=(0, 0), shape=(512, 512))
        payload = _payload_store(store, transformed)
        assert set(payload) == set(transformed.nest.array_names())
        assert "UNRELATED" not in payload
        assert len(pickle.dumps(payload)) < len(pickle.dumps(store))

    def test_payload_arrays_are_copies(self):
        nest = example_4_1(8)
        transformed = _transformed(nest)
        store = store_for_nest(nest)
        payload = _payload_store(store, transformed)
        name = next(iter(payload))
        before = store[name].data.copy()
        payload[name].data[...] += 1.0
        assert np.array_equal(store[name].data, before)

    def test_missing_referenced_array_omitted(self):
        nest = example_4_1(8)
        transformed = _transformed(nest)
        payload = _payload_store(ArrayStore(), transformed)
        assert len(payload) == 0  # worker raises the standard error later

    def test_processes_run_still_correct_with_extra_arrays(self):
        nest = example_4_1(10)
        transformed = _transformed(nest)
        reference = store_for_nest(nest)
        execute_nest(nest, reference)
        store = store_for_nest(nest)
        store["UNRELATED"] = OffsetArray(origin=(0, 0), shape=(4, 4), fill=7.0)
        executor = ParallelExecutor(mode="processes", workers=2, backend="compiled")
        executor.run(transformed, store, plan=transformed.execution_plan())
        del store["UNRELATED"]
        assert reference.identical(store)


class TestEmptyScheduleSpeedup:
    def test_schedule_statistics_empty(self):
        stats = schedule_statistics([])
        assert stats["ideal_speedup"] == 0.0
        assert stats["num_chunks"] == 0

    def test_plan_statistics_nonempty_consistency(self):
        transformed = _transformed(example_4_1(10))
        stats = transformed.execution_plan().statistics()
        assert stats["ideal_speedup"] == pytest.approx(
            stats["total_iterations"] / stats["max_chunk_size"]
        )
        assert stats["ideal_speedup"] > 0.0
