"""Native backend: bit-identical to the interpreter, with graceful fallback.

The native backend compiles plans to machine code (numba or C + ctypes), so
its differential contract is checked the same way as every other backend —
``ArrayStore.identical`` (``np.array_equal``, no tolerance) against the
interpreter reference — across:

* the workload suite and seeded random nests,
* all four executor modes (serial / threads / processes / shared),
* plain, coalesced, tiled and fused plan spaces,
* every error path (window violations, division by zero, domain errors
  must raise the same exception types as the interpreter),
* and the engine-absent / unsupported-expression fallback to the
  vectorized backend (monkeypatched, so this leg runs even on machines
  that do have numba or a C compiler).
"""

import os
import pickle

import numpy as np
import pytest

from repro.api import Session
from repro.codegen import native as native_codegen
from repro.codegen.transformed_nest import TransformedLoopNest
from repro.core.pipeline import analyze_nest
from repro.exceptions import ExecutionError
from repro.loopnest.builder import loop_nest
from repro.plan import FusePlansPass, PlanPassManager, optimize_plan
from repro.runtime.arrays import ArrayStore, OffsetArray, store_for_nest
from repro.runtime.backends import NativeBackend, get_backend
from repro.runtime.executor import ParallelExecutor
from repro.runtime.interpreter import execute_nest
from repro.workloads.paper_examples import example_4_1, example_4_2
from repro.workloads.suite import workload_suite

SUITE = workload_suite(5)
SUITE_IDS = [case.name for case in SUITE]

HAVE_ENGINE = native_codegen.resolve_engine() is not None
needs_engine = pytest.mark.skipif(
    not HAVE_ENGINE, reason="no native engine (numba or a C compiler) available"
)
needs_dev_shm = pytest.mark.skipif(
    not os.path.isdir("/dev/shm"), reason="shared mode needs /dev/shm"
)


def _reference_and_transformed(nest, placement=None):
    kwargs = {"placement": placement} if placement else {}
    transformed = TransformedLoopNest.from_report(analyze_nest(nest, **kwargs))
    base = store_for_nest(nest)
    ref = base.copy()
    execute_nest(nest, ref)
    return base, ref, transformed


def _no_engines(monkeypatch):
    """Make both engines unavailable, regardless of the host toolchain."""
    monkeypatch.setattr(native_codegen, "_numba_module", lambda: None)
    monkeypatch.setattr(native_codegen, "_find_c_compiler", lambda: None)
    native_codegen.clear_kernel_cache()


# ---------------------------------------------------------------------------
# differential: suite, random nests, executor modes, plan spaces
# ---------------------------------------------------------------------------

class TestNativeDifferential:
    @pytest.mark.parametrize("case", SUITE, ids=SUITE_IDS)
    def test_suite_bit_identical(self, case):
        base, ref, transformed = _reference_and_transformed(case.nest)
        result = base.copy()
        NativeBackend().execute(transformed, result)
        assert ref.identical(result), (
            f"native diverged on {case.name!r}: "
            f"max |diff| = {ref.max_abs_difference(result):.3e}"
        )

    @pytest.mark.parametrize("seed", range(8))
    def test_seeded_random_nests(self, seed):
        rng = np.random.default_rng(1000 + seed)
        n = int(rng.integers(4, 8))
        a, b = int(rng.integers(1, 3)), int(rng.integers(0, 3))
        scale = float(rng.integers(1, 5)) / 4.0
        nest = (
            loop_nest(f"native-random-{seed}")
            .loop("i1", 0, n)
            .loop("i2", 0, n)
            .statement(f"A[i1, i2] = A[i1 - {a}, i2 - {b}] * {scale} + B[i1, i2]")
            .statement(f"C[i1, i2] = sin(C[i1 - 1, i2]) + {scale}")
            .build()
        )
        base = store_for_nest(nest, initializer="random", seed=seed)
        ref = base.copy()
        execute_nest(nest, ref)
        transformed = TransformedLoopNest.from_report(analyze_nest(nest))
        result = base.copy()
        NativeBackend().execute(transformed, result)
        assert ref.identical(result), (seed, nest.name)

    @pytest.mark.parametrize("mode", ["serial", "threads", "processes"])
    def test_executor_modes(self, mode):
        for nest in (example_4_1(8), example_4_2(6)):
            base, ref, transformed = _reference_and_transformed(nest)
            result = base.copy()
            outcome = ParallelExecutor(mode=mode, workers=4, backend="native").run(
                transformed, result
            )
            assert ref.identical(result), (mode, nest.name)
            assert outcome.num_chunks > 0

    @needs_dev_shm
    def test_shared_mode(self):
        nest = example_4_1(8)
        base, ref, transformed = _reference_and_transformed(nest)
        result = base.copy()
        executor = ParallelExecutor(mode="shared", workers=2, backend="native")
        try:
            executor.run(transformed, result)
        finally:
            executor.close()
        assert ref.identical(result)

    @pytest.mark.parametrize("passes", [("coalesce",), ("tile",), ("coalesce", "tile")])
    def test_optimized_plan_spaces(self, passes):
        nest = example_4_1(8)
        base, ref, transformed = _reference_and_transformed(nest)
        plan, _ = optimize_plan(transformed.execution_plan(), transformed, passes=passes)
        result = base.copy()
        NativeBackend().execute_plan(transformed, plan, result)
        assert ref.identical(result), passes

    @pytest.mark.parametrize("mode", ["serial", "threads", "processes"])
    def test_fused_plan_execution(self, mode):
        nests = [case.nest for case in SUITE[:3]]
        transformeds = [
            TransformedLoopNest.from_report(analyze_nest(nest)) for nest in nests
        ]
        plans = [transformed.execution_plan() for transformed in transformeds]
        [fused] = PlanPassManager([FusePlansPass()]).optimize(
            plans, tuple(transformeds)
        ).plans
        stores = [store_for_nest(nest) for nest in nests]
        executor = ParallelExecutor(mode=mode, workers=2, backend="native")
        results = executor.run_fused(transformeds, fused, stores)
        assert len(results) == len(nests)
        for nest, store in zip(nests, stores):
            ref = store_for_nest(nest)
            execute_nest(nest, ref)
            assert ref.identical(store), (mode, nest.name)


# ---------------------------------------------------------------------------
# errors must match the interpreter's exception types
# ---------------------------------------------------------------------------

@needs_engine
class TestNativeErrors:
    def _transformed(self, nest):
        return TransformedLoopNest.from_report(analyze_nest(nest))

    def test_division_by_zero(self):
        nest = (
            loop_nest("native-divzero")
            .loop("i1", 0, 4)
            .loop("i2", -2, 2)
            .statement("A[i1, i2] = B[i1, i2] + 1.0 / (i2)")
            .build()
        )
        store = store_for_nest(nest)
        with pytest.raises(ZeroDivisionError):
            execute_nest(nest, store.copy())
        backend = NativeBackend()
        with pytest.raises(ZeroDivisionError):
            backend.execute(self._transformed(nest), store.copy())
        assert backend.stats["fallback_runs"] == 0

    def test_math_domain_error(self):
        nest = (
            loop_nest("native-domain")
            .loop("i1", -3, 3)
            .statement("A[i1] = sqrt((i1))")
            .build()
        )
        store = store_for_nest(nest)
        with pytest.raises(ValueError):
            execute_nest(nest, store.copy())
        with pytest.raises(ValueError):
            NativeBackend().execute(self._transformed(nest), store.copy())

    def test_window_violation(self):
        nest = (
            loop_nest("native-window")
            .loop("i1", 0, 5)
            .statement("A[i1] = A[i1 - 1] + 1.0")
            .build()
        )
        # A window that misses A[-1]: the interpreter raises ExecutionError
        # on the out-of-window read, and so must the native kernel.
        def tight_store():
            store = ArrayStore()
            store["A"] = OffsetArray.from_window([0], [5])
            return store

        with pytest.raises(ExecutionError):
            execute_nest(nest, tight_store())
        with pytest.raises(ExecutionError):
            NativeBackend().execute(self._transformed(nest), tight_store())


# ---------------------------------------------------------------------------
# fallback: no engine, disabled engine, unsupported expressions
# ---------------------------------------------------------------------------

class TestNativeFallback:
    def test_no_engine_falls_back_to_vectorized(self, monkeypatch):
        _no_engines(monkeypatch)
        assert native_codegen.available_engines() == ()
        assert native_codegen.resolve_engine() is None
        nest = example_4_1(6)
        base, ref, transformed = _reference_and_transformed(nest)
        backend = NativeBackend()
        result = base.copy()
        backend.execute(transformed, result)
        assert ref.identical(result)
        assert backend.stats["fallback_runs"] == 1
        assert backend.stats["native_runs"] == 0
        assert backend.last_execution_engine in ("vectorized", "compiled")
        native_codegen.clear_kernel_cache()

    def test_engine_env_disables_native(self, monkeypatch):
        monkeypatch.setenv(native_codegen.ENGINE_ENV, "none")
        assert native_codegen.resolve_engine() is None
        nest = example_4_1(6)
        base, ref, transformed = _reference_and_transformed(nest)
        backend = NativeBackend()
        result = base.copy()
        backend.execute(transformed, result)
        assert ref.identical(result)
        assert backend.stats["fallback_runs"] == 1

    def test_unsupported_expression_falls_back(self):
        # Floor division has integer semantics the all-double kernel cannot
        # reproduce exactly; the support check rejects it up front.
        nest = (
            loop_nest("native-floordiv")
            .loop("i1", 1, 6)
            .statement("A[i1] = B[i1] + (i1) // 2")
            .build()
        )
        assert not native_codegen.nest_is_native_supported(nest)
        base, ref, transformed = _reference_and_transformed(nest)
        backend = NativeBackend()
        result = base.copy()
        backend.execute(transformed, result)
        assert ref.identical(result)
        assert backend.stats["fallback_runs"] == 1

    def test_executor_modes_with_no_engine(self, monkeypatch):
        _no_engines(monkeypatch)
        nest = example_4_1(6)
        base, ref, transformed = _reference_and_transformed(nest)
        for mode in ("serial", "threads", "processes"):
            result = base.copy()
            ParallelExecutor(mode=mode, workers=2, backend="native").run(
                transformed, result
            )
            assert ref.identical(result), mode
        native_codegen.clear_kernel_cache()


# ---------------------------------------------------------------------------
# kernel cache: canonical sharing, LRU bounds, pickling, setup accounting
# ---------------------------------------------------------------------------

@needs_engine
class TestKernelCache:
    def _renamed_pair(self):
        def build(index, array):
            return (
                loop_nest(f"renamed-{index}-{array}")
                .loop(index, 1, 8)
                .statement(f"{array}[{index}] = {array}[{index} - 1] * 0.5 + 1.0")
                .build()
            )

        return build("i1", "A"), build("k1", "Z")

    def test_alpha_renamed_nests_share_one_kernel(self):
        native_codegen.clear_kernel_cache()
        first, second = self._renamed_pair()
        for nest in (first, second):
            program = native_codegen.native_program_for(
                TransformedLoopNest.from_report(analyze_nest(nest))
            )
            assert program is not None
        info = native_codegen.kernel_cache_info()
        assert info["size"] == 1
        assert info["builds"] == 1
        assert info["hits"] == 1
        native_codegen.clear_kernel_cache()

    def test_lru_eviction(self):
        native_codegen.clear_kernel_cache()
        native_codegen.set_kernel_cache_limit(1)
        try:
            programs = [
                (
                    loop_nest(f"evict-{k}")
                    .loop("i1", 1, 6)
                    .statement(f"A[i1] = A[i1 - 1] + {float(k + 1)}")
                    .build()
                )
                for k in range(3)
            ]
            for nest in programs:
                transformed = TransformedLoopNest.from_report(analyze_nest(nest))
                assert native_codegen.native_program_for(transformed) is not None
            info = native_codegen.kernel_cache_info()
            assert info["size"] == 1
            assert info["evictions"] == 2
            # Evicted kernels rebuild correctly (the disk artifact survives).
            base, ref, transformed = _reference_and_transformed(programs[0])
            result = base.copy()
            NativeBackend().execute(transformed, result)
            assert ref.identical(result)
        finally:
            native_codegen.set_kernel_cache_limit(64)
            native_codegen.clear_kernel_cache()

    def test_backend_pickles_without_kernel_state(self):
        backend = NativeBackend()
        nest = example_4_1(6)
        base, ref, transformed = _reference_and_transformed(nest)
        backend.execute(transformed, base.copy())
        clone = pickle.loads(pickle.dumps(backend))
        result = base.copy()
        clone.execute(transformed, result)
        assert ref.identical(result)

    def test_compile_time_lands_in_setup(self, tmp_path, monkeypatch):
        monkeypatch.setenv(native_codegen.CACHE_DIR_ENV, str(tmp_path))
        native_codegen.clear_kernel_cache()
        nest = example_4_1(8)
        base, ref, transformed = _reference_and_transformed(nest)
        backend = NativeBackend()
        outcome = ParallelExecutor(mode="serial", backend=backend).run(
            transformed, base.copy()
        )
        assert backend.stats["compile_seconds"] > 0
        assert outcome.setup_seconds >= backend.stats["compile_seconds"]
        assert outcome.backend.startswith("native-")
        # Warm second run: no further compilation.
        compile_before = backend.stats["compile_seconds"]
        ParallelExecutor(mode="serial", backend=backend).run(transformed, base.copy())
        assert backend.stats["compile_seconds"] - compile_before < compile_before
        native_codegen.clear_kernel_cache()


# ---------------------------------------------------------------------------
# session integration
# ---------------------------------------------------------------------------

class TestSessionIntegration:
    def test_session_runs_native_backend(self):
        nest = example_4_1(8)
        ref = store_for_nest(nest)
        execute_nest(nest, ref)
        with Session(mode="serial", backend="native") as session:
            result = session.run(nest, verify=True)
        assert result.max_abs_difference == 0.0
        assert result.execution.num_chunks > 0

    @needs_engine
    def test_session_reuses_warm_kernels(self):
        native_codegen.clear_kernel_cache()
        with Session(mode="serial", backend="native") as session:
            session.run(example_4_1(6))
        builds_first = native_codegen.kernel_cache_info()["builds"]
        with Session(mode="serial", backend="native") as session:
            session.run(example_4_1(6))
        info = native_codegen.kernel_cache_info()
        assert info["builds"] == builds_first  # same program, new session
        assert info["hits"] > 0
        native_codegen.clear_kernel_cache()
