"""Spec-versioned plan pickling.

Plans cross process *and* host boundaries (worker pools, cluster nodes,
disk caches) where sender and receiver may run different builds.  The
pickle therefore carries ``ExecutionPlan.SPEC_VERSION`` and unpickling
rejects any other version with a clear error — a silently misinterpreted
spec field would corrupt results without any signal.
"""

import pickle

import pytest

from repro.api import Session
from repro.codegen.transformed_nest import TransformedLoopNest
from repro.core.pipeline import analyze_nest
from repro.exceptions import CodegenError
from repro.plan import ExecutionPlan
from repro.workloads.paper_examples import example_4_1


def _plan(n: int = 8) -> ExecutionPlan:
    report = analyze_nest(example_4_1(n))
    return TransformedLoopNest.from_report(report).execution_plan()


class TestSpecVersion:
    def test_roundtrip_carries_current_version(self):
        plan = _plan()
        state = plan.__getstate__()
        assert state["spec_version"] == ExecutionPlan.SPEC_VERSION
        clone = pickle.loads(pickle.dumps(plan))
        assert clone.chunk_sizes() == plan.chunk_sizes()
        assert [chunk.key for chunk in clone.select_chunks()] == [
            chunk.key for chunk in plan.select_chunks()
        ]

    @pytest.mark.parametrize("bad_version", [0, 2, "1", None])
    def test_mismatched_version_rejected_with_clear_error(self, bad_version):
        plan = _plan()
        state = plan.__getstate__()
        state["spec_version"] = bad_version
        payload = pickle.dumps((type(plan), state))
        cls, state = pickle.loads(payload)
        clone = cls.__new__(cls)
        with pytest.raises(CodegenError, match="spec"):
            clone.__setstate__(state)

    def test_missing_version_field_rejected(self):
        # Pre-versioning pickles have no spec_version at all: they must be
        # refused too (version 0), not silently loaded.
        plan = _plan()
        state = plan.__getstate__()
        del state["spec_version"]
        clone = type(plan).__new__(type(plan))
        with pytest.raises(CodegenError, match="version 0"):
            clone.__setstate__(state)

    def test_optimized_plans_inherit_the_mechanism(self):
        # TiledPlan extends _SPEC_FIELDS; the version check must cover it.
        with Session(mode="threads", backend="vectorized") as session:
            nest = example_4_1(8)
            analysis = session._analyze_nest(nest, placement=None, name=None)
            _, plan = session._program_for(nest, analysis.report)
        state = plan.__getstate__()
        assert state["spec_version"] == ExecutionPlan.SPEC_VERSION
        state["spec_version"] = 99
        clone = type(plan).__new__(type(plan))
        with pytest.raises(CodegenError, match="99"):
            clone.__setstate__(state)
        # And an untampered roundtrip still works.
        assert pickle.loads(pickle.dumps(plan)).chunk_sizes() == plan.chunk_sizes()
