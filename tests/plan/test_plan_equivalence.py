"""Property tests: the symbolic plan is bit-identical to the legacy schedule.

The contract of :mod:`repro.plan` is exact equivalence with the original
materializing ``build_schedule`` (kept as
:func:`repro.codegen.schedule.build_schedule_by_enumeration`):

* same chunk keys, in the same (first-appearance) order,
* same per-chunk iterations, in the same (lexicographic) order,
* same closed-form counts (``chunk_count``, ``chunk_size``,
  ``total_iterations``, ``statistics()``),
* same execution results through every backend and executor mode
  (including ``mode="shared"``, where only the plan crosses the process
  boundary).

Checked over the workload suite (both placements) and seeded random nests —
the random family deliberately includes non-rectangular bounds and
transforms whose Fourier–Motzkin scan has integrality gaps (prefixes with
empty integer fibers), the corner the plan's invariance analysis must
handle conservatively.
"""

import os
import pickle

import numpy as np
import pytest

from repro.codegen.schedule import build_schedule, build_schedule_by_enumeration
from repro.codegen.transformed_nest import TransformedLoopNest
from repro.core.pipeline import analyze_nest
from repro.loopnest.builder import loop_nest
from repro.runtime.arrays import store_for_nest
from repro.runtime.backends import get_backend
from repro.runtime.executor import ParallelExecutor
from repro.runtime.interpreter import execute_nest
from repro.workloads.suite import workload_suite

SUITE = workload_suite(6)
SUITE_IDS = [case.name for case in SUITE]

needs_dev_shm = pytest.mark.skipif(
    not os.path.isdir("/dev/shm"), reason="shared mode needs /dev/shm"
)


def _random_nest(rng: np.random.Generator):
    """Random analyzable 2- and 3-deep nests, rectangular and triangular."""
    n = int(rng.integers(3, 8))
    pattern = int(rng.integers(0, 3))
    if pattern == 0:
        a, b = int(rng.integers(1, 4)), int(rng.integers(0, 4))
        body = f"A[i1, i2] = A[i1 - {a}, i2 - {b}] * 0.5 + 1.0"
    elif pattern == 1:
        p, q = int(rng.integers(2, 4)), int(rng.integers(2, 5))
        body = f"A[{p}*i1 + i2] = A[{p}*i1 + i2 - {q}] + 1.0"
    else:
        a = 2 * int(rng.integers(1, 3))
        m = int(rng.integers(1, 3))
        body = f"A[i1, i2] = A[-i1 - {a}, {m}*i1 + i2 + {a}] + 1.0"
    lo = int(rng.integers(-3, 1))
    builder = loop_nest(f"random-{pattern}").loop("i1", lo, lo + n)
    if rng.integers(0, 2):
        builder = builder.loop("i2", "i1", lo + n)  # triangular inner bound
    else:
        builder = builder.loop("i2", lo, lo + n)
    builder.statement(body)
    return builder.build()


def _assert_plan_matches_reference(transformed: TransformedLoopNest) -> None:
    reference = build_schedule_by_enumeration(transformed)
    plan = transformed.execution_plan()

    # Keys, order of first appearance.
    assert [chunk.key for chunk in reference] == list(plan.chunk_keys())
    # Per-chunk iterations in lexicographic order, via the lazy generator.
    for chunk, view in zip(reference, plan.chunks()):
        assert chunk.key == view.key
        assert chunk.iterations == list(view.iterations)
        assert chunk.size == view.size == plan.chunk_size(chunk.key)
    # Closed-form aggregates.
    assert plan.chunk_count == len(reference)
    assert plan.total_iterations == sum(chunk.size for chunk in reference)
    assert plan.chunk_sizes() == [chunk.size for chunk in reference]
    # The materializing view layer routes through the plan and must agree.
    materialized = build_schedule(transformed)
    assert [c.key for c in materialized] == [c.key for c in reference]
    assert all(
        a.iterations == b.iterations for a, b in zip(materialized, reference)
    )


class TestScheduleEquivalence:
    @pytest.mark.parametrize("case", SUITE, ids=SUITE_IDS)
    @pytest.mark.parametrize("placement", ["outer", "inner"])
    def test_suite_bit_identical(self, case, placement):
        report = analyze_nest(case.nest, placement=placement)
        _assert_plan_matches_reference(TransformedLoopNest.from_report(report))

    @pytest.mark.parametrize("seed", range(25))
    def test_random_nests_bit_identical(self, seed):
        nest = _random_nest(np.random.default_rng(seed))
        for placement in ("outer", "inner"):
            report = analyze_nest(nest, placement=placement)
            _assert_plan_matches_reference(TransformedLoopNest.from_report(report))

    def test_plan_statistics_match_schedule_statistics(self):
        from repro.codegen.schedule import schedule_statistics

        for case in SUITE:
            transformed = TransformedLoopNest.from_report(analyze_nest(case.nest))
            legacy = schedule_statistics(build_schedule_by_enumeration(transformed))
            assert transformed.execution_plan().statistics() == legacy

    def test_plan_survives_pickling_bit_identical(self):
        # Workers receive the plan by pickle; the round-tripped plan must
        # enumerate exactly the same schedule.
        for case in SUITE:
            transformed = TransformedLoopNest.from_report(analyze_nest(case.nest))
            plan = transformed.execution_plan()
            clone = pickle.loads(pickle.dumps(plan))
            assert list(plan.chunk_keys()) == list(clone.chunk_keys())
            for key in plan.chunk_keys():
                assert list(plan.iterations_for(key)) == list(clone.iterations_for(key))
            assert plan.chunk_sizes() == clone.chunk_sizes()


class TestExecutionEquivalence:
    """Plan-driven execution is bit-identical to the interpreter reference."""

    @pytest.mark.parametrize("case", SUITE, ids=SUITE_IDS)
    @pytest.mark.parametrize(
        "backend_name", ["interpreter", "compiled", "vectorized"]
    )
    def test_backends_on_plan(self, case, backend_name):
        transformed = TransformedLoopNest.from_report(analyze_nest(case.nest))
        base = store_for_nest(case.nest)
        reference = base.copy()
        execute_nest(case.nest, reference)
        backend = get_backend(backend_name)
        if backend_name == "vectorized":
            backend = get_backend(backend_name, min_parallel_width=2)
        result = base.copy()
        backend.execute_plan(transformed, transformed.execution_plan(), result)
        assert reference.identical(result), (case.name, backend_name)

    @pytest.mark.parametrize("mode", ["serial", "threads", "processes"])
    @pytest.mark.parametrize("seed", [0, 3, 7])
    def test_executor_modes_on_plan(self, mode, seed):
        nest = _random_nest(np.random.default_rng(seed))
        transformed = TransformedLoopNest.from_report(analyze_nest(nest))
        base = store_for_nest(nest)
        reference = base.copy()
        execute_nest(nest, reference)
        result = base.copy()
        with ParallelExecutor(mode=mode, workers=2, backend="compiled") as executor:
            outcome = executor.run(transformed, result)
        assert reference.identical(result), (mode, seed)
        assert outcome.total_iterations == transformed.iteration_count()

    @needs_dev_shm
    @pytest.mark.parametrize("case", SUITE, ids=SUITE_IDS)
    def test_shared_mode_on_plan(self, case):
        # The pool receives nothing but the plan spec; workers enumerate
        # their chunks in place and the result is still bit-identical.
        transformed = TransformedLoopNest.from_report(analyze_nest(case.nest))
        base = store_for_nest(case.nest)
        reference = base.copy()
        execute_nest(case.nest, reference)
        result = base.copy()
        with ParallelExecutor(mode="shared", workers=2, backend="compiled") as executor:
            executor.run(transformed, result)
        assert reference.identical(result), case.name

    @needs_dev_shm
    @pytest.mark.parametrize("seed", [1, 5])
    def test_shared_mode_random_nests(self, seed):
        nest = _random_nest(np.random.default_rng(100 + seed))
        transformed = TransformedLoopNest.from_report(analyze_nest(nest))
        base = store_for_nest(nest)
        reference = base.copy()
        execute_nest(nest, reference)
        result = base.copy()
        with ParallelExecutor(mode="shared", workers=2, backend="vectorized") as executor:
            executor.run(transformed, result)
        assert reference.identical(result), seed
