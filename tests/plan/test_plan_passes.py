"""Property tests: plan optimization passes are bit-exact rewrites.

Every pass in :mod:`repro.plan.passes` must preserve the differential
contract of the plan IR exactly:

* the *multiset* of executed iterations equals the enumeration reference's
  (``build_schedule_by_enumeration``) — every iteration once, none added;
* executing the rewritten plan leaves the store bit-identical to the
  interpreter reference, through every backend and executor mode;
* closed-form totals (``total_iterations``, summed chunk sizes) are
  unchanged.

Checked over the workload suite (both placements) and seeded random nests,
plus targeted tests for each pass's structural guarantees (coalescing
actually reduces the chunk count on example 4.1, tiling preserves chunk
structure, fusion's global index arithmetic round-trips).
"""

import os
import pickle

import numpy as np
import pytest

from repro.codegen.schedule import build_schedule_by_enumeration
from repro.codegen.transformed_nest import TransformedLoopNest
from repro.core.pipeline import analyze_nest
from repro.exceptions import CodegenError
from repro.loopnest.builder import loop_nest
from repro.plan import (
    DEFAULT_PLAN_PASSES,
    CoalesceChunksPass,
    ExecutionPlan,
    FusedPlan,
    FusePlansPass,
    PlanPassManager,
    TiledPlan,
    TileSequentialLevelsPass,
    available_plan_passes,
    build_plan_pipeline,
    get_plan_pass,
    optimize_plan,
)
from repro.runtime.arrays import store_for_nest
from repro.runtime.backends import get_backend
from repro.runtime.executor import ParallelExecutor
from repro.runtime.interpreter import execute_nest
from repro.workloads.paper_examples import example_4_1
from repro.workloads.suite import workload_suite

SUITE = workload_suite(6)
SUITE_IDS = [case.name for case in SUITE]

needs_dev_shm = pytest.mark.skipif(
    not os.path.isdir("/dev/shm"), reason="shared mode needs /dev/shm"
)


def _transformed(nest, placement="outer"):
    return TransformedLoopNest.from_report(analyze_nest(nest, placement=placement))


def _iteration_multiset(transformed, plan):
    iterations = []
    if isinstance(plan, FusedPlan):  # pragma: no cover - not used for fused
        raise AssertionError("fused plans are checked member-wise")
    for view in plan.chunks():
        iterations.extend(view.iterations)
    return sorted(iterations)


def _reference_multiset(transformed):
    return sorted(
        iteration
        for chunk in build_schedule_by_enumeration(transformed)
        for iteration in chunk.iterations
    )


def _reference_store(nest):
    store = store_for_nest(nest)
    execute_nest(nest, store)
    return store


def _random_nest(rng: np.random.Generator):
    """Same random family as test_plan_equivalence: the IR's hard corners."""
    n = int(rng.integers(3, 8))
    pattern = int(rng.integers(0, 3))
    if pattern == 0:
        a, b = int(rng.integers(1, 4)), int(rng.integers(0, 4))
        body = f"A[i1, i2] = A[i1 - {a}, i2 - {b}] * 0.5 + 1.0"
    elif pattern == 1:
        p, q = int(rng.integers(2, 4)), int(rng.integers(2, 5))
        body = f"A[{p}*i1 + i2] = A[{p}*i1 + i2 - {q}] + 1.0"
    else:
        a = 2 * int(rng.integers(1, 3))
        m = int(rng.integers(1, 3))
        body = f"A[i1, i2] = A[-i1 - {a}, {m}*i1 + i2 + {a}] + 1.0"
    lo = int(rng.integers(-3, 1))
    builder = loop_nest(f"random-{pattern}").loop("i1", lo, lo + n)
    if rng.integers(0, 2):
        builder = builder.loop("i2", "i1", lo + n)
    else:
        builder = builder.loop("i2", lo, lo + n)
    builder.statement(body)
    return builder.build()


# --------------------------------------------------------------------------- #
# coalescing
# --------------------------------------------------------------------------- #

class TestCoalesce:
    @pytest.mark.parametrize("case", SUITE, ids=SUITE_IDS)
    @pytest.mark.parametrize("placement", ["outer", "inner"])
    def test_iteration_multiset_preserved(self, case, placement):
        transformed = _transformed(case.nest, placement)
        plan, _ = optimize_plan(
            transformed.execution_plan(), transformed, passes=("coalesce",)
        )
        assert _iteration_multiset(transformed, plan) == _reference_multiset(
            transformed
        )
        assert plan.total_iterations == transformed.iteration_count()
        assert sum(plan.chunk_sizes()) == plan.total_iterations

    def test_reduces_chunks_on_example_41(self):
        transformed = _transformed(example_4_1(64))
        base = transformed.execution_plan()
        coalesced, ctx = optimize_plan(base, transformed, passes=("coalesce",))
        # 2 labels fold, then adjacent fronts merge pairwise: >= 2x fewer.
        assert coalesced.chunk_count * 2 <= base.chunk_count
        assert any(step.name == "coalesce" for step in ctx.steps)

    def test_small_plans_left_alone(self):
        # Below min_chunks there is nothing to trade: the plan is unchanged.
        transformed = _transformed(example_4_1(6))
        base = transformed.execution_plan()
        pass_ = CoalesceChunksPass(min_chunks=10**6)
        ctx = PlanPassManager([pass_]).optimize([base], (transformed,))
        assert ctx.plans[0] is base

    @pytest.mark.parametrize("backend", ["interpreter", "compiled", "vectorized"])
    def test_results_bit_identical(self, backend):
        for case in SUITE:
            transformed = _transformed(case.nest)
            plan, _ = optimize_plan(
                transformed.execution_plan(),
                transformed,
                passes=("coalesce",),
            )
            store = store_for_nest(case.nest)
            get_backend(backend).execute_plan(transformed, plan, store)
            assert _reference_store(case.nest).identical(store), case.name

    def test_random_nests_bit_identical(self):
        rng = np.random.default_rng(20260807)
        backend = get_backend("compiled")
        for _ in range(25):
            nest = _random_nest(rng)
            transformed = _transformed(nest)
            plan, _ = optimize_plan(
                transformed.execution_plan(),
                transformed,
                passes=("coalesce",),
            )
            assert _iteration_multiset(transformed, plan) == _reference_multiset(
                transformed
            )
            store = store_for_nest(nest)
            backend.execute_plan(transformed, plan, store)
            assert _reference_store(nest).identical(store)


# --------------------------------------------------------------------------- #
# tiling
# --------------------------------------------------------------------------- #

class TestTile:
    def test_chunk_structure_untouched(self):
        transformed = _transformed(example_4_1(32))
        base = transformed.execution_plan()
        tiled, _ = optimize_plan(base, transformed, passes=("tile",))
        if not isinstance(tiled, TiledPlan):
            pytest.skip("plan below the tiling threshold")
        assert list(tiled.chunk_keys()) == list(base.chunk_keys())
        assert tiled.chunk_sizes() == base.chunk_sizes()

    def test_small_tile_forces_waves_and_matches(self):
        # A tiny budget forces many waves; results must stay bit-identical.
        for case in SUITE:
            transformed = _transformed(case.nest)
            base = transformed.execution_plan()
            ctx = PlanPassManager(
                [TileSequentialLevelsPass(tile_iterations=3)]
            ).optimize([base], (transformed,))
            plan = ctx.plans[0]
            backend = get_backend("vectorized", min_parallel_width=2)
            store = store_for_nest(case.nest)
            backend.execute_plan(transformed, plan, store)
            assert _reference_store(case.nest).identical(store), case.name

    def test_tiled_plan_is_plain_execution_plan_everywhere_else(self):
        transformed = _transformed(example_4_1(32))
        tiled = TiledPlan(transformed.execution_plan(), tile_iterations=8)
        assert isinstance(tiled, ExecutionPlan)
        clone = pickle.loads(pickle.dumps(tiled))
        assert isinstance(clone, TiledPlan)
        assert clone.tile_iterations == 8
        assert list(clone.chunk_keys()) == list(tiled.chunk_keys())

    def test_rejects_bad_budget(self):
        transformed = _transformed(example_4_1(8))
        with pytest.raises(CodegenError):
            TiledPlan(transformed.execution_plan(), tile_iterations=0)

    def test_idempotent(self):
        # Re-running the pass on an already tiled plan is a no-op.
        transformed = _transformed(example_4_1(16))
        tiled = TiledPlan(transformed.execution_plan(), tile_iterations=2)
        ctx = PlanPassManager(
            [TileSequentialLevelsPass(tile_iterations=2)]
        ).optimize([tiled], (transformed,))
        assert ctx.plans[0] is tiled


# --------------------------------------------------------------------------- #
# fusion
# --------------------------------------------------------------------------- #

class TestFuse:
    def _members(self, count=3):
        nests = [case.nest for case in SUITE[:count]]
        transformeds = [_transformed(nest) for nest in nests]
        plans = [transformed.execution_plan() for transformed in transformeds]
        return nests, transformeds, plans

    def test_global_index_arithmetic(self):
        _, transformeds, plans = self._members()
        fused = FusedPlan(plans)
        assert fused.chunk_count == sum(plan.chunk_count for plan in plans)
        assert fused.total_iterations == sum(p.total_iterations for p in plans)
        assert fused.chunk_sizes() == [
            size for plan in plans for size in plan.chunk_sizes()
        ]
        # member_of round-trips every global position.
        for global_index in range(fused.chunk_count):
            member, local = fused.member_of(global_index)
            assert fused.split_starts[member] + local == global_index
            assert 0 <= local < plans[member].chunk_count
        with pytest.raises(CodegenError):
            fused.member_of(fused.chunk_count)

    def test_split_group_partitions_indices(self):
        _, _, plans = self._members()
        fused = FusedPlan(plans)
        group = tuple(range(0, fused.chunk_count, 2))
        split = fused.split_group(group)
        rebuilt = [
            fused.split_starts[member] + local
            for member, locals_ in split
            for local in locals_
        ]
        assert sorted(rebuilt) == sorted(group)

    def test_pass_requires_two_plans(self):
        _, transformeds, plans = self._members(1)
        ctx = PlanPassManager([FusePlansPass()]).optimize(
            plans, tuple(transformeds)
        )
        assert ctx.plans == plans  # skipped: nothing to fuse

    @pytest.mark.parametrize("mode", ["serial", "threads", "processes"])
    def test_fused_execution_bit_identical(self, mode):
        nests, transformeds, plans = self._members()
        ctx = PlanPassManager([FusePlansPass()]).optimize(
            plans, tuple(transformeds)
        )
        [fused] = ctx.plans
        assert isinstance(fused, FusedPlan)
        stores = [store_for_nest(nest) for nest in nests]
        executor = ParallelExecutor(mode=mode, workers=2, backend="compiled")
        results = executor.run_fused(transformeds, fused, stores)
        assert len(results) == len(nests)
        for nest, store, result in zip(nests, stores, results):
            assert _reference_store(nest).identical(store)
            assert result.num_chunks > 0

    @needs_dev_shm
    def test_fused_execution_shared_mode(self):
        nests, transformeds, plans = self._members()
        [fused] = PlanPassManager([FusePlansPass()]).optimize(
            plans, tuple(transformeds)
        ).plans
        stores = [store_for_nest(nest) for nest in nests]
        executor = ParallelExecutor(mode="shared", workers=2, backend="vectorized")
        try:
            results = executor.run_fused(transformeds, fused, stores)
        finally:
            executor.close()
        for nest, store, result in zip(nests, stores, results):
            assert _reference_store(nest).identical(store)
            assert result.fallback is None


# --------------------------------------------------------------------------- #
# the default pipeline, end to end
# --------------------------------------------------------------------------- #

class TestPipeline:
    @pytest.mark.parametrize("case", SUITE, ids=SUITE_IDS)
    def test_default_pipeline_matches_reference(self, case):
        transformed = _transformed(case.nest)
        plan, ctx = optimize_plan(transformed.execution_plan(), transformed)
        if not isinstance(plan, FusedPlan):
            assert _iteration_multiset(transformed, plan) == _reference_multiset(
                transformed
            )
        for backend in ("compiled", "vectorized"):
            store = store_for_nest(case.nest)
            get_backend(backend).execute_plan(transformed, plan, store)
            assert _reference_store(case.nest).identical(store)

    def test_timings_and_steps_recorded(self):
        transformed = _transformed(example_4_1(64))
        _, ctx = optimize_plan(transformed.execution_plan(), transformed)
        assert [timing.name for timing in ctx.timings] == list(DEFAULT_PLAN_PASSES)
        assert all(timing.seconds >= 0.0 for timing in ctx.timings)
        assert ctx.steps  # at least the coalesce rewrite fired at N=64

    @pytest.mark.parametrize("mode", ["serial", "threads", "processes"])
    def test_executor_modes_match_reference(self, mode):
        transformed = _transformed(example_4_1(24))
        plan, _ = optimize_plan(transformed.execution_plan(), transformed)
        nest = example_4_1(24)
        store = store_for_nest(nest)
        executor = ParallelExecutor(mode=mode, workers=2, backend="compiled")
        executor.run(transformed, store, plan=plan)
        assert _reference_store(nest).identical(store)

    @needs_dev_shm
    def test_shared_mode_matches_reference(self):
        transformed = _transformed(example_4_1(24))
        plan, _ = optimize_plan(transformed.execution_plan(), transformed)
        nest = example_4_1(24)
        store = store_for_nest(nest)
        executor = ParallelExecutor(mode="shared", workers=2, backend="vectorized")
        try:
            executor.run(transformed, store, plan=plan)
        finally:
            executor.close()
        assert _reference_store(nest).identical(store)


# --------------------------------------------------------------------------- #
# the registry
# --------------------------------------------------------------------------- #

class TestRegistry:
    def test_builtin_passes_registered(self):
        names = available_plan_passes()
        assert {"coalesce", "tile", "fuse"} <= set(names)
        assert names == tuple(sorted(names))

    def test_unknown_pass_rejected(self):
        with pytest.raises(CodegenError, match="unknown plan pass"):
            get_plan_pass("definitely-not-a-pass")

    def test_build_pipeline_instantiates_fresh_passes(self):
        first = build_plan_pipeline(("coalesce",))
        second = build_plan_pipeline(("coalesce",))
        assert first.passes[0] is not second.passes[0]

    def test_factory_options_pass_through(self):
        pass_ = get_plan_pass("tile", tile_iterations=17)
        assert pass_.tile_iterations == 17
