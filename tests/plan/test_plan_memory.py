"""Large-N memory smoke tests: plans stay tiny where schedules explode.

The point of the ExecutionPlan IR is that nothing between analysis and
execution is O(total iterations) anymore.  These tests pin that:

* building the plan for an N>=512, depth-3 nest (>=137M iterations — far
  beyond what the materializing ``build_schedule`` could hold) stays under
  a fixed tracemalloc budget and returns exact closed-form counts;
* the plan's pickle (what the worker pool ships per program) stays a few
  hundred bytes at sizes where the materialized schedule measures in the
  hundreds of megabytes;
* the worker-pool program payload carries the plan spec, not iteration
  lists.
"""

import pickle
import tracemalloc

from repro.codegen.transformed_nest import TransformedLoopNest
from repro.core.pipeline import analyze_nest
from repro.plan import ExecutionPlan
from repro.workloads.paper_examples import example_4_1
from repro.workloads.synthetic import three_deep_variable_loop

#: Generous ceiling for plan construction at huge N.  Materializing the
#: same schedule would need hundreds of bytes *per iteration* — orders of
#: magnitude past this budget — so a regression to materialization anywhere
#: on the construction path trips the assert immediately.
_BUDGET_BYTES = 8 * 1024 * 1024


def _traced_plan(nest) -> tuple:
    """(plan, peak tracemalloc bytes) for analysis -> transformed -> plan."""
    report = analyze_nest(nest)
    transformed = TransformedLoopNest.from_report(report)
    tracemalloc.start()
    try:
        plan = ExecutionPlan.from_transformed(transformed)
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return plan, peak


class TestLargeNConstruction:
    def test_depth3_n512_under_budget(self):
        # depth 3, N=512: (N+1)^2 * (N/2+1) ≈ 67.7M iterations.  At even 16
        # bytes per materialized iteration that would be >1 GB; the plan
        # must stay under the fixed budget.
        nest = three_deep_variable_loop(512)
        plan, peak = _traced_plan(nest)
        assert plan.total_iterations == nest.iteration_count()
        assert plan.total_iterations > 60_000_000
        assert peak < _BUDGET_BYTES, f"plan construction peaked at {peak} bytes"

    def test_example41_n4096_under_budget(self):
        # 16.8M iterations, ~2N chunks; counts and statistics must be
        # closed-form — the budget would not survive an enumeration of the
        # space, let alone a materialization.
        nest = example_4_1(4096)
        plan, peak = _traced_plan(nest)
        assert plan.total_iterations == (2 * 4096 + 1) ** 2
        assert peak < _BUDGET_BYTES, f"plan construction peaked at {peak} bytes"
        assert plan.chunk_count > 4096

    def test_closed_form_counts_match_enumeration_at_small_n(self):
        # The same closed forms that make N=4096 cheap must agree with
        # enumeration where enumeration is feasible.
        for n in (4, 7):
            nest = example_4_1(n)
            transformed = TransformedLoopNest.from_report(analyze_nest(nest))
            plan = transformed.execution_plan()
            assert plan.total_iterations == sum(1 for _ in transformed.iterations())
            assert plan.chunk_count == len(set(
                transformed.chunk_key(it) for it in transformed.iterations()
            ))


class TestPlanPickleSize:
    def test_pickle_stays_small_as_n_grows(self):
        sizes = {}
        for n in (64, 256, 1024):
            transformed = TransformedLoopNest.from_report(analyze_nest(example_4_1(n)))
            sizes[n] = len(pickle.dumps(ExecutionPlan.from_transformed(transformed)))
        # A few hundred bytes, independent of N (up to integer-width jitter
        # in the pickled bound constants).
        assert all(size < 2048 for size in sizes.values()), sizes
        assert max(sizes.values()) - min(sizes.values()) < 64, sizes

    def test_pool_program_payload_is_plan_not_iterations(self):
        # What run_job registers with the pool: the schedule member of the
        # program payload must be the plan spec (no Chunk lists anywhere).
        from repro.runtime.pool import WorkerPool

        transformed = TransformedLoopNest.from_report(analyze_nest(example_4_1(64)))
        plan = transformed.execution_plan()
        pool = WorkerPool(workers=1)
        try:
            program = pool._ensure_program(transformed, object(), plan)
            _, _, schedule = program.payload
            assert isinstance(schedule, ExecutionPlan)
            # The whole shipped schedule is a few hundred bytes while the
            # space holds (2*64+1)^2 = 16641 iterations.
            assert len(pickle.dumps(schedule)) < 2048
            assert plan.total_iterations == 129 * 129
        finally:
            pool.close()
