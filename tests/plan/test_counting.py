"""Closed-form iteration counting (the satellite fix for iteration_count).

``TransformedLoopNest.iteration_count`` used to enumerate the whole new
space (``sum(1 for _ in self.iterations())``); it now derives the count
from the bounds.  These tests pin the closed form against brute-force
enumeration on rectangular, triangular and degenerate nests, including the
fallback path where the non-negativity proof fails.
"""

import pytest

from repro.codegen.transformed_nest import TransformedLoopNest
from repro.core.pipeline import analyze_nest
from repro.loopnest.affine import AffineExpr
from repro.loopnest.bounds import LoopBounds
from repro.loopnest.builder import loop_nest
from repro.loopnest.counting import closed_form_count, count_by_walk
from repro.workloads.paper_examples import example_4_1, example_4_2
from repro.workloads.synthetic import three_deep_variable_loop


def _brute(names, bounds) -> int:
    def recurse(level, env):
        if level == len(bounds):
            return 1
        lower = bounds[level].lower_value(env)
        upper = bounds[level].upper_value(env)
        total = 0
        for value in range(lower, upper + 1):
            env[names[level]] = value
            total += recurse(level + 1, env)
        env.pop(names[level], None)
        return total

    return recurse(0, {})


class TestClosedFormCount:
    @pytest.mark.parametrize(
        "bounds",
        [
            [LoopBounds(0, 7), LoopBounds(0, 7)],
            [LoopBounds(-3, 5), LoopBounds(2, 9)],
            [LoopBounds(0, 7), LoopBounds(AffineExpr.variable("i1"), 7)],
            [LoopBounds(1, 6), LoopBounds(AffineExpr.variable("i1") * 2, 20)],
            [LoopBounds(3, 3), LoopBounds(AffineExpr.variable("i1"), AffineExpr.variable("i1"))],
            # Exactly-empty inner ranges contribute 0, not garbage.
            [
                LoopBounds(0, 5),
                LoopBounds(AffineExpr.variable("i1"), AffineExpr.variable("i1") - 1),
            ],
        ],
    )
    def test_matches_brute_force(self, bounds):
        names = ["i1", "i2"][: len(bounds)]
        expected = _brute(names, bounds)
        assert closed_form_count(names, bounds) == expected
        assert count_by_walk(names, bounds) == expected

    def test_unprovable_case_returns_none_and_walk_is_exact(self):
        # Extent i2 - i1 can conservatively look negative over the box hull;
        # the closed form must decline rather than guess.
        i1, i2 = AffineExpr.variable("i1"), AffineExpr.variable("i2")
        names = ["i1", "i2", "i3"]
        bounds = [LoopBounds(0, 5), LoopBounds(i1, 5), LoopBounds(i1, i2)]
        assert closed_form_count(names, bounds) is None
        assert count_by_walk(names, bounds) == _brute(names, bounds)

    def test_triangular_closed_form_scales(self):
        # N=2000 triangular: (N+1)(N+2)/2 iterations, counted without a loop
        # over the space.
        n = 2000
        names = ["i1", "i2"]
        bounds = [LoopBounds(0, n), LoopBounds(AffineExpr.variable("i1"), n)]
        assert closed_form_count(names, bounds) == (n + 1) * (n + 2) // 2


class TestTransformedIterationCount:
    @pytest.mark.parametrize("factory", [example_4_1, example_4_2, three_deep_variable_loop])
    @pytest.mark.parametrize("n", [4, 6])
    def test_equals_enumeration(self, factory, n):
        nest = factory(n)
        transformed = TransformedLoopNest.from_report(analyze_nest(nest))
        assert transformed.iteration_count() == sum(1 for _ in transformed.iterations())

    def test_triangular_nest_closed_form(self):
        nest = (
            loop_nest("triangle")
            .loop("i1", 0, 9)
            .loop("i2", "i1", 9)
            .statement("A[i1, i2] = A[i1 - 1, i2 - 1] + 1.0")
            .build()
        )
        transformed = TransformedLoopNest.from_report(analyze_nest(nest))
        assert nest.iteration_count() == 55
        assert transformed.iteration_count() == 55
        assert transformed.iteration_count() == sum(1 for _ in transformed.iterations())
