"""Tests for chunk schedules and the Python source emitter."""

import pytest

from repro.codegen.python_emitter import (
    compile_loop_function,
    emit_original_source,
    emit_transformed_source,
)
from repro.codegen.schedule import build_schedule, schedule_statistics
from repro.codegen.transformed_nest import TransformedLoopNest
from repro.core.pipeline import analyze_nest
from repro.runtime.arrays import store_for_nest
from repro.runtime.interpreter import execute_nest
from repro.workloads.kernels import strided_scatter, wavefront_recurrence
from repro.workloads.paper_examples import example_4_1, example_4_2
from repro.workloads.synthetic import no_dependence_loop


class TestSchedule:
    def test_chunks_partition_the_iteration_space(self, ex41_report):
        transformed = TransformedLoopNest.from_report(ex41_report)
        chunks = build_schedule(transformed)
        all_iterations = [it for chunk in chunks for it in chunk.iterations]
        assert len(all_iterations) == transformed.iteration_count()
        assert len(set(all_iterations)) == len(all_iterations)

    def test_chunk_iterations_in_lex_order(self, ex42_report):
        transformed = TransformedLoopNest.from_report(ex42_report)
        for chunk in build_schedule(transformed):
            assert chunk.iterations == sorted(chunk.iterations)
            assert chunk.size == len(chunk.iterations)

    def test_chunk_keys_unique(self, ex42_report):
        transformed = TransformedLoopNest.from_report(ex42_report)
        chunks = build_schedule(transformed)
        keys = [chunk.key for chunk in chunks]
        assert len(keys) == len(set(keys))

    def test_example_42_has_four_chunks(self, ex42_report):
        transformed = TransformedLoopNest.from_report(ex42_report)
        chunks = build_schedule(transformed)
        # no doall loops, 4 partitions => exactly 4 chunks
        assert len(chunks) == 4

    def test_statistics(self, ex42_report):
        transformed = TransformedLoopNest.from_report(ex42_report)
        chunks = build_schedule(transformed)
        stats = schedule_statistics(chunks)
        assert stats["num_chunks"] == 4
        assert stats["total_iterations"] == ex42_report.nest.iteration_count()
        assert stats["max_chunk_size"] >= stats["min_chunk_size"]
        assert stats["ideal_speedup"] == pytest.approx(
            stats["total_iterations"] / stats["max_chunk_size"]
        )

    def test_statistics_empty(self):
        # A zero-iteration schedule has no work: ideal_speedup must read
        # 0.0 ("nothing to parallelize"), not 1.0 ("no parallelism").
        stats = schedule_statistics([])
        assert stats["num_chunks"] == 0
        assert stats["ideal_speedup"] == 0.0

    def test_sequential_loop_single_chunk(self):
        report = analyze_nest(wavefront_recurrence(5))
        transformed = TransformedLoopNest.from_report(report)
        chunks = build_schedule(transformed)
        assert len(chunks) == 1

    def test_fully_parallel_loop_one_chunk_per_iteration(self):
        report = analyze_nest(no_dependence_loop(3))
        transformed = TransformedLoopNest.from_report(report)
        chunks = build_schedule(transformed)
        assert len(chunks) == transformed.iteration_count()
        assert all(chunk.size == 1 for chunk in chunks)


class TestEmitter:
    def test_original_source_executes_like_interpreter(self, ex41_small):
        source = emit_original_source(ex41_small)
        function = compile_loop_function(source, "run_original")
        store_a = store_for_nest(ex41_small)
        store_b = store_a.copy()
        execute_nest(ex41_small, store_a)
        function(store_b)
        assert store_a.allclose(store_b)

    @pytest.mark.parametrize(
        "factory",
        [
            lambda: example_4_1(6),
            lambda: example_4_2(6),
            lambda: strided_scatter(6, stride=3),
            lambda: wavefront_recurrence(5),
            lambda: no_dependence_loop(4),
        ],
    )
    def test_transformed_source_matches_original(self, factory):
        nest = factory()
        report = analyze_nest(nest)
        transformed = TransformedLoopNest.from_report(report)
        source = emit_transformed_source(transformed)
        function = compile_loop_function(source, "run_transformed")
        reference = store_for_nest(nest)
        result = reference.copy()
        execute_nest(nest, reference)
        function(result)
        assert reference.allclose(result)

    def test_doall_annotations_present(self, ex41_report):
        transformed = TransformedLoopNest.from_report(ex41_report)
        source = emit_transformed_source(transformed)
        assert "# doall" in source
        assert "partition offset" in source

    def test_strides_in_generated_source(self, ex42_report):
        transformed = TransformedLoopNest.from_report(ex42_report)
        source = emit_transformed_source(transformed)
        assert ", 2)" in source  # stride-2 loops
        assert "range(2)" in source  # partition offsets

    def test_compile_rejects_missing_function(self):
        from repro.exceptions import CodegenError

        with pytest.raises(CodegenError):
            compile_loop_function("x = 1\n", "run_transformed")

    def test_emitted_source_mentions_original_indices(self, ex41_report):
        transformed = TransformedLoopNest.from_report(ex41_report)
        source = emit_transformed_source(transformed)
        assert "i1 =" in source and "i2 =" in source
