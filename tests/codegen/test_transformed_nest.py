"""Tests for the transformed iteration space (Fourier–Motzkin bounds, index mapping)."""

import pytest

from repro.codegen.transformed_nest import TransformedLoopNest
from repro.core.pipeline import analyze_nest
from repro.exceptions import CodegenError
from repro.intlin.matrix import vec_mat_mul
from repro.loopnest.builder import loop_nest
from repro.workloads.paper_examples import example_4_1, example_4_2


class TestConstruction:
    def test_identity_wrapper(self, ex41_small):
        transformed = TransformedLoopNest.identity(ex41_small)
        assert transformed.is_identity
        assert transformed.iteration_count() == ex41_small.iteration_count()
        assert list(transformed.iterations()) == list(ex41_small.iterations())

    def test_from_report(self, ex41_report):
        transformed = TransformedLoopNest.from_report(ex41_report)
        assert transformed.parallel_levels == (0,)
        assert transformed.partitioning is not None
        assert transformed.new_index_names == ("j1", "j2")

    def test_shape_validation(self, ex41_small):
        with pytest.raises(CodegenError):
            TransformedLoopNest(nest=ex41_small, transform=[[1, 0, 0], [0, 1, 0], [0, 0, 1]])

    def test_index_name_validation(self, ex41_small):
        with pytest.raises(CodegenError):
            TransformedLoopNest(
                nest=ex41_small, transform=[[1, 0], [0, 1]], new_index_names=("j1",)
            )


class TestIterationSpace:
    def test_iteration_count_preserved(self, ex41_report, ex42_report):
        for report in (ex41_report, ex42_report):
            transformed = TransformedLoopNest.from_report(report)
            assert transformed.iteration_count() == report.nest.iteration_count()

    def test_new_space_is_exact_image(self, ex41_report):
        transformed = TransformedLoopNest.from_report(ex41_report)
        nest = ex41_report.nest
        expected = {
            tuple(vec_mat_mul(list(it), ex41_report.transform)) for it in nest.iterations()
        }
        scanned = set(transformed.iterations())
        assert scanned == expected

    def test_iterations_in_lex_order(self, ex41_report):
        transformed = TransformedLoopNest.from_report(ex41_report)
        iterations = list(transformed.iterations())
        assert iterations == sorted(iterations)

    def test_round_trip_index_mapping(self, ex42_report):
        transformed = TransformedLoopNest.from_report(ex42_report)
        for iteration in list(ex42_report.nest.iterations())[:50]:
            new = transformed.new_iteration(iteration)
            assert transformed.original_iteration(new) == tuple(iteration)

    def test_original_env(self, ex41_report):
        transformed = TransformedLoopNest.from_report(ex41_report)
        new_iter = next(iter(transformed.iterations()))
        env = transformed.original_env(new_iter)
        assert set(env) == {"i1", "i2"}
        assert ex41_report.nest.contains_iteration(
            [env[name] for name in ex41_report.nest.index_names]
        )

    def test_triangular_original_space(self):
        nest = (
            loop_nest("triangle")
            .loop("i1", 0, 6)
            .loop("i2", 0, "i1")
            .statement("A[i1, i2] = A[i1 - 1, i2] + 1.0")
            .build()
        )
        report = analyze_nest(nest)
        transformed = TransformedLoopNest.from_report(report)
        assert transformed.iteration_count() == nest.iteration_count()


class TestChunkKeys:
    def test_chunk_key_structure(self, ex41_report):
        transformed = TransformedLoopNest.from_report(ex41_report)
        keys = {transformed.chunk_key(it) for it in transformed.iterations()}
        # one key per (j1 value, partition label); j1 ranges over -12..12 => 25 values x 2 labels
        j1_values = {it[0] for it in transformed.iterations()}
        assert len(keys) <= len(j1_values) * 2
        assert len(keys) > len(j1_values)

    def test_chunk_key_without_partitioning(self, ex41_small):
        transformed = TransformedLoopNest.identity(ex41_small)
        key = transformed.chunk_key((0, 0))
        assert key == ((), ())

    def test_describe(self, ex41_report):
        transformed = TransformedLoopNest.from_report(ex41_report)
        text = transformed.describe()
        assert "doall" in text
        assert "partitions: 2" in text
