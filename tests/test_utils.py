"""Tests for repro.utils (validation and formatting helpers)."""

import numpy as np
import pytest

from repro.exceptions import ShapeError
from repro.utils.formatting import format_matrix, format_table, format_vector, indent_block
from repro.utils.validation import (
    as_int_list,
    as_int_table,
    check_int,
    check_int_matrix,
    check_int_vector,
    check_same_length,
    check_square,
)


class TestValidation:
    def test_check_int_accepts_various(self):
        assert check_int(5) == 5
        assert check_int(np.int64(7)) == 7
        assert check_int(3.0) == 3

    def test_check_int_rejects(self):
        with pytest.raises(ShapeError):
            check_int(3.5)
        with pytest.raises(ShapeError):
            check_int(True)
        with pytest.raises(ShapeError):
            check_int("3")

    def test_as_int_list(self):
        assert as_int_list((1, 2, 3)) == [1, 2, 3]
        assert as_int_list(np.array([1, 2])) == [1, 2]
        with pytest.raises(ShapeError):
            as_int_list(np.array([[1, 2]]))

    def test_as_int_table(self):
        assert as_int_table(np.array([[1, 2], [3, 4]])) == [[1, 2], [3, 4]]
        assert as_int_table([]) == []
        with pytest.raises(ShapeError):
            as_int_table([[1], [2, 3]])

    def test_check_vector_length(self):
        assert check_int_vector([1, 2], length=2) == [1, 2]
        with pytest.raises(ShapeError):
            check_int_vector([1, 2], length=3)

    def test_check_matrix_shape(self):
        assert check_int_matrix([[1, 2]], n_rows=1, n_cols=2) == [[1, 2]]
        with pytest.raises(ShapeError):
            check_int_matrix([[1, 2]], n_rows=2)
        with pytest.raises(ShapeError):
            check_int_matrix([[1, 2]], n_cols=3)

    def test_check_square(self):
        assert check_square([[1, 2], [3, 4]]) == [[1, 2], [3, 4]]
        with pytest.raises(ShapeError):
            check_square([[1, 2]])
        with pytest.raises(ShapeError):
            check_square([])

    def test_check_same_length(self):
        check_same_length([1, 2], [3, 4])
        with pytest.raises(ShapeError):
            check_same_length([1], [1, 2])


class TestFormatting:
    def test_format_vector(self):
        assert format_vector([1, -2, 3]) == "( 1 -2 3 )"

    def test_format_matrix_alignment(self):
        text = format_matrix([[1, -20], [300, 4]])
        lines = text.splitlines()
        assert len(lines) == 2
        assert all(line.startswith("[") for line in lines)
        assert "300" in lines[1]

    def test_format_matrix_empty(self):
        assert "empty" in format_matrix([])

    def test_format_table(self):
        text = format_table(["a", "bb"], [[1, 2], [33, 44]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "a" in lines[0] and "bb" in lines[0]
        assert set(lines[1]) <= {"-", "+", " "}

    def test_indent_block(self):
        assert indent_block("x\ny", "  ") == "  x\n  y"
        assert indent_block("x\n\ny", "  ") == "  x\n\n  y"
