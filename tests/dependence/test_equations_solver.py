"""Tests for dependence equation construction and solving (Section 2 of the paper)."""

import pytest

from repro.dependence.distance import lexicographic_class, normalize_distance
from repro.dependence.equations import dependence_equation_system, reference_pairs
from repro.dependence.solver import analyze_loop_dependences, solve_reference_pair
from repro.exceptions import DependenceError
from repro.intlin.lattice import Lattice
from repro.loopnest.builder import loop_nest
from repro.workloads.paper_examples import example_4_1, example_4_2


def _single_statement_nest(statement, n=6, bounds=(-1, 1)):
    builder = loop_nest("t").loop("i1", bounds[0] * n, bounds[1] * n).loop(
        "i2", bounds[0] * n, bounds[1] * n
    )
    return builder.statement(statement).build()


class TestDistanceHelpers:
    def test_normalize_distance(self):
        assert normalize_distance([0, 0]) is None
        assert normalize_distance([2, -1]) == [2, -1]
        assert normalize_distance([-2, 1]) == [2, -1]
        assert normalize_distance([0, -3]) == [0, 3]

    def test_lexicographic_class(self):
        assert lexicographic_class([1, 0], [1, 1]) == "before"
        assert lexicographic_class([1, 1], [1, 1]) == "equal"
        assert lexicographic_class([2, 0], [1, 5]) == "after"


class TestReferencePairs:
    def test_pairs_of_simple_nest(self):
        nest = _single_statement_nest("A[i1, i2] = A[i1 - 1, i2] + B[i1, i2]")
        pairs = reference_pairs(nest)
        arrays = sorted(p.array for p in pairs)
        # A-write/A-write (self), A-write/A-read; B is read-only -> no pair
        assert arrays == ["A", "A"]

    def test_pairs_without_self(self):
        nest = _single_statement_nest("A[i1, i2] = A[i1 - 1, i2] + 1.0")
        pairs = reference_pairs(nest, include_self=False)
        assert len(pairs) == 1
        assert pairs[0].kind == "flow_or_anti"

    def test_self_pair_kind(self):
        nest = _single_statement_nest("A[i1, i2] = 1.0")
        pairs = reference_pairs(nest)
        assert len(pairs) == 1
        assert pairs[0].kind == "self_output"

    def test_output_pair_between_statements(self):
        nest = (
            loop_nest("two")
            .loop("i1", 0, 4)
            .loop("i2", 0, 4)
            .statement("A[i1, i2] = 1.0")
            .statement("A[i1, i2 - 1] = 2.0")
            .build()
        )
        kinds = {p.kind for p in reference_pairs(nest, include_self=False)}
        assert "output" in kinds

    def test_inconsistent_dimensionality_rejected(self):
        nest = (
            loop_nest("bad")
            .loop("i1", 0, 3)
            .loop("i2", 0, 3)
            .statement("A[i1, i2] = A[i1] + 1.0")
            .build()
        )
        with pytest.raises(DependenceError):
            reference_pairs(nest)

    def test_equation_system_shape(self):
        nest = _single_statement_nest("A[i1, i2] = A[i1 - 1, i2 + 2] + 1.0")
        pair = reference_pairs(nest, include_self=False)[0]
        matrix, constant = dependence_equation_system(pair, nest.index_names)
        assert len(matrix) == 4          # 2n rows
        assert len(matrix[0]) == 2       # d columns
        assert len(constant) == 2


class TestSolveReferencePair:
    def test_uniform_distance(self):
        nest = _single_statement_nest("A[i1, i2] = A[i1 - 2, i2 - 3] + 1.0", bounds=(0, 1))
        pair = reference_pairs(nest, include_self=False)[0]
        sol = solve_reference_pair(pair, nest.index_names)
        assert sol.consistent
        assert sol.is_uniform
        assert sorted(normalize_distance(sol.offset)) == sorted([2, 3])
        assert sol.distance_lattice().contains([2, 3])

    def test_no_dependence(self):
        nest = _single_statement_nest("A[2*i1, i2] = A[2*i1 + 1, i2] + 1.0", bounds=(0, 1))
        pair = reference_pairs(nest, include_self=False)[0]
        sol = solve_reference_pair(pair, nest.index_names)
        assert not sol.consistent
        assert not sol.has_dependence

    def test_variable_distance_example_41(self):
        nest = example_4_1(6)
        solutions = analyze_loop_dependences(nest)
        flows = [s for s in solutions if s.pair.kind == "flow_or_anti"]
        assert len(flows) == 1
        sol = flows[0]
        assert sol.consistent
        assert not sol.is_uniform
        lattice = sol.distance_lattice()
        assert lattice.rank == 1
        assert lattice.contains([2, -2])
        assert lattice.contains([4, -4])
        assert not lattice.contains([1, -1])

    def test_variable_distance_example_42(self):
        nest = example_4_2(6)
        solutions = [s for s in analyze_loop_dependences(nest) if s.consistent]
        merged = Lattice(
            [row for s in solutions for row in s.lattice_generators], dimension=2
        )
        assert merged.determinant() == 4
        assert merged.contains([2, 1])
        assert merged.contains([0, 2])

    def test_self_output_of_injective_write_has_zero_offset_only(self):
        nest = _single_statement_nest("A[i1, i2] = 1.0", bounds=(0, 1))
        pair = reference_pairs(nest)[0]
        sol = solve_reference_pair(pair, nest.index_names)
        assert sol.consistent
        assert sol.lattice_generators == []

    def test_describe_strings(self):
        nest = example_4_1(4)
        for sol in analyze_loop_dependences(nest):
            text = sol.describe()
            assert "A[" in text
