"""Tests for the classic dependence tests (GCD, Banerjee) and direction vectors."""

import pytest

from repro.dependence.classic_tests import banerjee_test, gcd_test
from repro.dependence.direction import (
    DirectionVector,
    direction_vectors_of_nest,
    directions_from_distances,
)
from repro.dependence.equations import reference_pairs
from repro.dependence.solver import solve_reference_pair
from repro.exceptions import DependenceError
from repro.loopnest.builder import loop_nest
from repro.workloads.paper_examples import example_4_1


def _nest(statement, lo=0, hi=8):
    return (
        loop_nest("t")
        .loop("i1", lo, hi)
        .loop("i2", lo, hi)
        .statement(statement)
        .build()
    )


class TestGcdTest:
    def test_dependence_possible(self):
        nest = _nest("A[2*i1, i2] = A[2*i1 - 4, i2] + 1.0")
        pair = reference_pairs(nest, include_self=False)[0]
        result = gcd_test(pair, nest.index_names)
        assert result.dependence_possible

    def test_dependence_impossible_by_parity(self):
        nest = _nest("A[2*i1, i2] = A[2*i1 + 1, i2] + 1.0")
        pair = reference_pairs(nest, include_self=False)[0]
        result = gcd_test(pair, nest.index_names)
        assert not result.dependence_possible
        assert any("fail" in d for d in result.per_dimension)

    def test_gcd_agrees_with_exact_solver(self):
        # Whenever the exact solver finds a dependence the GCD test must not rule it out.
        statements = [
            "A[i1, i2] = A[i1 - 1, i2 - 2] + 1.0",
            "A[2*i1 + i2, i2] = A[2*i1 + i2 - 2, i2] + 1.0",
            "A[3*i1, 2*i2] = A[3*i1 - 6, 2*i2 - 4] + 1.0",
        ]
        for statement in statements:
            nest = _nest(statement)
            pair = reference_pairs(nest, include_self=False)[0]
            exact = solve_reference_pair(pair, nest.index_names)
            conservative = gcd_test(pair, nest.index_names)
            if exact.consistent:
                assert conservative.dependence_possible

    def test_describe(self):
        nest = _nest("A[i1, i2] = A[i1 - 1, i2] + 1.0")
        pair = reference_pairs(nest, include_self=False)[0]
        assert "gcd" in gcd_test(pair, nest.index_names).describe()


class TestBanerjeeTest:
    def test_bounds_rule_out_far_dependence(self):
        # The read is shifted by 100, far outside the 0..8 iteration space.
        nest = _nest("A[i1, i2] = A[i1 - 100, i2] + 1.0")
        pair = reference_pairs(nest, include_self=False)[0]
        result = banerjee_test(pair, nest)
        assert not result.dependence_possible

    def test_bounds_allow_near_dependence(self):
        nest = _nest("A[i1, i2] = A[i1 - 2, i2] + 1.0")
        pair = reference_pairs(nest, include_self=False)[0]
        assert banerjee_test(pair, nest).dependence_possible

    def test_requires_rectangular_bounds(self):
        nest = (
            loop_nest("tri")
            .loop("i1", 0, 5)
            .loop("i2", 0, "i1")
            .statement("A[i1, i2] = A[i1 - 1, i2] + 1.0")
            .build()
        )
        pair = reference_pairs(nest, include_self=False)[0]
        with pytest.raises(DependenceError):
            banerjee_test(pair, nest)

    def test_banerjee_weaker_than_gcd_on_parity(self):
        # Banerjee (real relaxation) cannot see the parity conflict the GCD test sees.
        nest = _nest("A[2*i1, i2] = A[2*i1 + 1, i2] + 1.0")
        pair = reference_pairs(nest, include_self=False)[0]
        assert banerjee_test(pair, nest).dependence_possible
        assert not gcd_test(pair, nest.index_names).dependence_possible


class TestDirectionVectors:
    def test_from_distance(self):
        assert DirectionVector.from_distance([2, 0, -1]).directions == ("<", "=", ">")

    def test_invalid_symbol(self):
        with pytest.raises(ValueError):
            DirectionVector(("x",))

    def test_merge(self):
        a = DirectionVector(("<", "="))
        b = DirectionVector(("<", ">"))
        assert a.merge(b).directions == ("<", "*")

    def test_carried_level(self):
        assert DirectionVector(("=", "<")).carried_level() == 1
        assert DirectionVector(("=", "=")).carried_level() == -1

    def test_allows_parallel_level(self):
        vec = DirectionVector(("<", "*"))
        assert vec.allows_parallel_level(1)      # carried by the outer loop
        assert not vec.allows_parallel_level(0)
        vec = DirectionVector(("=", "<"))
        assert vec.allows_parallel_level(0)

    def test_directions_from_distances_dedup(self):
        vectors = directions_from_distances([[1, 0], [2, 0], [0, 1]])
        assert len(vectors) == 2

    def test_direction_vectors_of_wavefront(self):
        nest = _nest("A[i1, i2] = A[i1 - 1, i2] + A[i1, i2 - 1]", hi=5)
        directions = {v.directions for v in direction_vectors_of_nest(nest)}
        assert ("<", "=") in directions
        assert ("=", "<") in directions

    def test_direction_vectors_of_variable_distance_loop(self):
        directions = direction_vectors_of_nest(example_4_1(5))
        assert directions  # the loop does carry dependences
        for vec in directions:
            assert vec.directions[0] == "<"
