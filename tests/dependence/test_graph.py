"""Tests for exact iteration-level dependence enumeration."""

import pytest

from repro.dependence.graph import enumerate_dependence_edges, realized_distances
from repro.exceptions import DependenceError
from repro.loopnest.builder import loop_nest
from repro.workloads.paper_examples import example_4_1, example_4_2
from repro.workloads.synthetic import no_dependence_loop


def _nest(statement, lo=0, hi=5):
    return (
        loop_nest("t")
        .loop("i1", lo, hi)
        .loop("i2", lo, hi)
        .statement(statement)
        .build()
    )


class TestEnumerateEdges:
    def test_simple_flow_dependence(self):
        nest = _nest("A[i1, i2] = A[i1 - 1, i2] + 1.0", hi=3)
        edges = enumerate_dependence_edges(nest)
        assert edges
        assert all(e.kind == "flow" for e in edges)
        assert all(e.distance == (1, 0) for e in edges)
        # 3 source rows x 4 columns
        assert len(edges) == 12

    def test_anti_dependence(self):
        nest = _nest("A[i1, i2] = A[i1 + 1, i2] + 1.0", hi=3)
        edges = enumerate_dependence_edges(nest)
        assert edges
        assert all(e.kind == "anti" for e in edges)
        assert all(e.distance == (1, 0) for e in edges)

    def test_output_dependence(self):
        nest = _nest("A[i1 + i2, 0] = 1.0", hi=3)
        kinds = {e.kind for e in enumerate_dependence_edges(nest)}
        assert kinds == {"output"}

    def test_source_is_always_before_sink(self):
        for nest in (example_4_1(5), example_4_2(5)):
            for edge in enumerate_dependence_edges(nest):
                assert edge.source < edge.sink
                assert edge.distance != (0,) * nest.depth

    def test_kind_filter(self):
        nest = _nest("A[i1, i2] = A[i1 - 1, i2] + A[i1 + 1, i2]", hi=3)
        all_edges = enumerate_dependence_edges(nest)
        flow_only = enumerate_dependence_edges(nest, include_kinds=["flow"])
        assert {e.kind for e in all_edges} == {"flow", "anti"}
        assert {e.kind for e in flow_only} == {"flow"}
        assert len(flow_only) < len(all_edges)

    def test_no_dependence_loop_has_no_edges(self):
        assert enumerate_dependence_edges(no_dependence_loop(4)) == []

    def test_iteration_limit(self):
        nest = _nest("A[i1, i2] = A[i1 - 1, i2] + 1.0", hi=9)
        with pytest.raises(DependenceError):
            enumerate_dependence_edges(nest, max_iterations=10)

    def test_flow_stops_at_next_write(self):
        # A[0] is rewritten every iteration of i1 (with i2 fixed): flow edges go
        # only to the reads before the next write.
        nest = (
            loop_nest("t")
            .loop("i1", 0, 3)
            .statement("B[i1] = A[0] + 1.0")
            .statement("A[0] = B[i1] * 2.0")
            .build()
        )
        edges = enumerate_dependence_edges(nest)
        flow_edges = [e for e in edges if e.kind == "flow" and e.array == "A"]
        # each write of A[0] feeds exactly the read in the next iteration
        assert all(e.sink[0] - e.source[0] == 1 for e in flow_edges)
        assert len(flow_edges) == 3

    def test_example_41_distances_are_multiples(self):
        distances = realized_distances(example_4_1(8))
        assert distances
        for d in distances:
            assert d[0] % 2 == 0
            assert d[0] == -d[1]

    def test_example_41_has_variable_distances(self):
        distances = realized_distances(example_4_1(8))
        lengths = {abs(d[0]) for d in distances}
        assert len(lengths) > 1  # genuinely variable


class TestRealizedDistances:
    def test_normalized_lex_positive(self):
        for nest in (example_4_1(5), example_4_2(5)):
            for distance in realized_distances(nest):
                nonzero = [v for v in distance if v != 0]
                assert nonzero and nonzero[0] > 0

    def test_uniform_loop_distances(self):
        nest = _nest("A[i1, i2] = A[i1 - 2, i2 - 1] + 1.0")
        assert realized_distances(nest) == {(2, 1)}
