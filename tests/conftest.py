"""Shared fixtures for the test-suite."""

from __future__ import annotations

import pytest

from repro.core.pipeline import analyze_nest
from repro.workloads.kernels import (
    banded_update,
    constant_partitioning_recurrence,
    strided_scatter,
    wavefront_recurrence,
)
from repro.workloads.paper_examples import example_4_1, example_4_2, figure1_example
from repro.workloads.suite import workload_suite
from repro.workloads.synthetic import (
    no_dependence_loop,
    uniform_distance_loop,
    variable_distance_loop,
)


@pytest.fixture(scope="session")
def ex41_small():
    """Paper example 4.1 with a small iteration space (fast exact enumeration)."""
    return example_4_1(6)


@pytest.fixture(scope="session")
def ex42_small():
    """Paper example 4.2 with a small iteration space."""
    return example_4_2(6)


@pytest.fixture(scope="session")
def ex41_report(ex41_small):
    return analyze_nest(ex41_small)


@pytest.fixture(scope="session")
def ex42_report(ex42_small):
    return analyze_nest(ex42_small)


@pytest.fixture(scope="session")
def wavefront_small():
    return wavefront_recurrence(6)


@pytest.fixture(scope="session")
def independent_small():
    return no_dependence_loop(5)


@pytest.fixture(scope="session")
def small_suite():
    """The workload suite at a size small enough for exact enumeration everywhere."""
    return workload_suite(5)


@pytest.fixture(scope="session")
def kernel_nests():
    """A handful of realistic kernels at small sizes."""
    return [
        wavefront_recurrence(5),
        constant_partitioning_recurrence(6, stride=2),
        banded_update(6, band=3),
        strided_scatter(6, stride=3),
        uniform_distance_loop([(1, -1), (2, 0)], 6),
        variable_distance_loop(scale=3, n=5),
    ]
