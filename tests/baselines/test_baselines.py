"""Tests for the baseline parallelization methods and the comparison harness."""

import pytest

from repro.baselines.base import ideal_speedup_of_result
from repro.baselines.comparison import (
    ALL_METHODS,
    compare_methods,
    comparison_table,
    related_work_table,
)
from repro.baselines.constant_partitioning import constant_partitioning_method
from repro.baselines.direction_vector import direction_vector_method
from repro.baselines.no_transform import no_transform_method
from repro.baselines.pdm_method import pdm_method
from repro.baselines.uniform_unimodular import uniform_unimodular_method
from repro.workloads.kernels import constant_partitioning_recurrence, wavefront_recurrence
from repro.workloads.paper_examples import example_4_1, example_4_2
from repro.workloads.suite import workload_suite
from repro.workloads.synthetic import no_dependence_loop, uniform_distance_loop


class TestPdmMethod:
    def test_always_applicable(self, ex41_small, ex42_small):
        for nest in (ex41_small, ex42_small, wavefront_recurrence(4)):
            result = pdm_method(nest)
            assert result.applicable
            assert result.dependence_representation == "pseudo distance matrix"

    def test_finds_parallelism_on_paper_examples(self, ex41_small, ex42_small):
        assert pdm_method(ex41_small).found_parallelism
        assert pdm_method(ex42_small).found_parallelism


class TestUniformUnimodular:
    def test_rejects_variable_distance(self, ex41_small, ex42_small):
        assert not uniform_unimodular_method(ex41_small).applicable
        assert not uniform_unimodular_method(ex42_small).applicable

    def test_handles_uniform_loop(self):
        nest = uniform_distance_loop([(1, -1)], 6)
        result = uniform_unimodular_method(nest)
        assert result.applicable
        # distance (1,-1): skewing exposes one parallel loop
        assert result.parallel_loop_count == 1
        assert result.partition_count == 1

    def test_no_dependence(self):
        result = uniform_unimodular_method(no_dependence_loop(4))
        assert result.applicable
        assert result.parallel_loop_count == 2

    def test_wavefront_no_doall(self):
        result = uniform_unimodular_method(wavefront_recurrence(4))
        assert result.applicable
        assert result.parallel_loop_count == 0


class TestConstantPartitioning:
    def test_rejects_variable_distance(self, ex41_small):
        assert not constant_partitioning_method(ex41_small).applicable

    def test_partitions_constant_loop(self):
        result = constant_partitioning_method(constant_partitioning_recurrence(6, stride=2))
        assert result.applicable
        assert result.partition_count == 4
        assert result.partitioning is not None

    def test_wavefront_det_one(self):
        result = constant_partitioning_method(wavefront_recurrence(4))
        assert result.applicable
        assert result.partition_count == 1
        # The method always materializes its (possibly trivial) partitioning
        # for a full-rank distance matrix.
        assert result.partitioning is not None
        assert result.partitioning.num_partitions == 1

    def test_rank_deficient_constant_distances(self):
        nest = uniform_distance_loop([(2, 0)], 6)
        result = constant_partitioning_method(nest)
        assert result.applicable
        assert result.partition_count == 1
        assert 1 in result.parallel_levels  # the inner loop carries nothing


class TestDirectionAndNoTransform:
    def test_direction_vectors_find_inner_parallel_loop(self):
        nest = uniform_distance_loop([(1, 0)], 5)
        result = direction_vector_method(nest)
        assert result.applicable
        assert 1 in result.parallel_levels
        assert result.execution_model == "barrier"

    def test_direction_vectors_miss_partitioning(self):
        result = direction_vector_method(constant_partitioning_recurrence(5, stride=2))
        assert result.partition_count == 1

    def test_no_transform_on_independent_loop(self):
        result = no_transform_method(no_dependence_loop(4))
        assert result.parallel_levels == (0, 1)

    def test_no_transform_on_wavefront(self):
        result = no_transform_method(wavefront_recurrence(4))
        assert result.parallel_levels == ()

    def test_describe(self, ex41_small):
        assert "doall" in pdm_method(ex41_small).describe()
        assert "not applicable" in uniform_unimodular_method(ex41_small).describe()


class TestIdealSpeedup:
    def test_pdm_beats_baselines_on_example_42(self, ex42_small):
        pdm_speedup = ideal_speedup_of_result(ex42_small, pdm_method(ex42_small))
        for method in (direction_vector_method, no_transform_method):
            baseline = ideal_speedup_of_result(ex42_small, method(ex42_small))
            assert pdm_speedup > baseline

    def test_inapplicable_method_gets_unity(self, ex41_small):
        result = uniform_unimodular_method(ex41_small)
        assert ideal_speedup_of_result(ex41_small, result) == 1.0

    def test_barrier_model_value(self):
        nest = uniform_distance_loop([(1, 0)], 5)
        result = direction_vector_method(nest)
        # inner loop parallel with a barrier per outer iteration: speedup = inner extent
        assert ideal_speedup_of_result(nest, result) == pytest.approx(6.0)

    def test_sequential_result_gets_unity(self):
        nest = wavefront_recurrence(4)
        assert ideal_speedup_of_result(nest, no_transform_method(nest)) == pytest.approx(1.0)


class TestComparisonHarness:
    def test_compare_methods_rows(self, small_suite):
        rows = compare_methods(small_suite[:4])
        assert len(rows) == 4
        for row in rows:
            assert set(dict(row.results)) == set(ALL_METHODS)
            assert all(speedup >= 1.0 for _, speedup in row.speedups)

    def test_pdm_never_worse_than_partitioning_baselines(self, small_suite):
        rows = compare_methods(small_suite)
        for row in rows:
            assert row.speedup_of("pdm") >= row.speedup_of("constant-partitioning") - 1e-9
            assert row.speedup_of("pdm") >= row.speedup_of("unimodular") - 1e-9

    def test_comparison_table_renders(self, small_suite):
        rows = compare_methods(small_suite[:3])
        table = comparison_table(rows)
        assert "workload" in table
        assert "pdm" in table

    def test_related_work_table(self):
        rows = related_work_table()
        assert len(rows) == 4
        assert any("This work" in row["method"] for row in rows)
