"""Setuptools shim.

The project metadata lives in ``pyproject.toml``; this file exists so that
``pip install -e .`` also works on minimal environments that lack the
``wheel`` package (pip then falls back to the legacy ``setup.py develop``
editable install).
"""

from setuptools import setup

setup()
