#!/usr/bin/env python
"""Related-work comparison (the paper's Table 1), measured.

Runs every implemented parallelization method — direction vectors, Banerjee's
uniform-distance unimodular framework, D'Hollander's constant-distance
partitioning, plain parallel-loop detection and this paper's PDM method — on
the workload suite and reports, per workload, which method applies and the
machine-independent speedup its transformation achieves.

Run with:  python examples/related_work_comparison.py [N]
"""

import sys

from repro.experiments.tables import table1_measured_rows, table1_related_work


def main(n: int = 8) -> None:
    print("Qualitative comparison (paper Table 1, implemented methods):")
    print(table1_related_work())
    print()

    measured = table1_measured_rows(n)
    print("Measured comparison (ideal speedup of each method's transformation):")
    print(measured["table"])
    print()

    print("Aggregates over the suite:")
    for method, stats in measured["aggregates"].items():
        print(
            f"  {method:>22s}: applicable on {stats['applicable']} workloads, "
            f"finds parallelism on {stats['found_parallelism']}, "
            f"mean ideal speedup {stats['mean_ideal_speedup']:.2f}"
        )


if __name__ == "__main__":
    size = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    main(size)
