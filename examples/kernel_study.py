#!/usr/bin/env python
"""Kernel study: apply the PDM method to a set of realistic loop kernels.

For each kernel the script reports the pseudo distance matrix, the chosen
transformation, the exploited parallelism (doall loops x partitions), the
machine-independent speedup, and the result of the dynamic verification —
i.e. the complete workflow a compiler writer would follow when evaluating the
method on real loops.

Run with:  python examples/kernel_study.py
"""

from repro.codegen.schedule import build_schedule, schedule_statistics
from repro.codegen.transformed_nest import TransformedLoopNest
from repro.core.pipeline import analyze_nest
from repro.runtime.simulator import simulate_schedule
from repro.runtime.verification import verify_transformation
from repro.utils.formatting import format_table
from repro.workloads.kernels import KERNELS
from repro.workloads.synthetic import three_deep_variable_loop


def main() -> None:
    kernels = {name: factory(10) for name, factory in KERNELS.items()}
    kernels["three-deep"] = three_deep_variable_loop(4)

    rows = []
    for name, nest in kernels.items():
        report = analyze_nest(nest)
        transformed = TransformedLoopNest.from_report(report)
        chunks = build_schedule(transformed)
        stats = schedule_statistics(chunks)
        sim = simulate_schedule(chunks, num_processors=8)
        verification = verify_transformation(
            nest, report, check_emitted_code=False, check_executors=("serial",)
        )
        rows.append(
            [
                name,
                nest.depth,
                nest.iteration_count(),
                f"rank {report.pdm.rank}/{nest.depth}",
                report.parallel_loop_count,
                report.partition_count,
                f"{stats['ideal_speedup']:.1f}",
                f"{sim.speedup:.2f}",
                "ok" if verification.passed else "FAIL",
            ]
        )

    headers = [
        "kernel", "depth", "iterations", "PDM", "doall loops",
        "partitions", "ideal speedup", "speedup p=8", "verified",
    ]
    print(format_table(headers, rows))
    print()
    print("Details for each kernel:")
    for name, nest in kernels.items():
        report = analyze_nest(nest)
        print(f"\n--- {name} ---")
        print(nest)
        print(report.summary())


if __name__ == "__main__":
    main()
