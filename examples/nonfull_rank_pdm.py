#!/usr/bin/env python
"""Section 4.1 walkthrough: a non-full-rank pseudo distance matrix.

Reproduces the paper's first worked example: a 2-deep loop with variable
dependence distances whose PDM has rank 1.  Algorithm 1 finds a legal
unimodular transformation that zeroes the leading column (the new outer loop
becomes ``doall``) and the remaining block has determinant 2, so the
partitioning step splits the iteration space into two independent partitions
— the structure shown in the paper's Figures 2 and 3.

Run with:  python examples/nonfull_rank_pdm.py [N]
"""

import sys

from repro import TransformedLoopNest, analyze_nest, verify_transformation
from repro.experiments.figures import figure2_original_isdg_41, figure3_transformed_isdg_41
from repro.workloads.paper_examples import example_4_1


def main(n: int = 10) -> None:
    nest = example_4_1(n)
    print("Original loop (reconstruction of Section 4.1):")
    print(nest)
    print()

    report = analyze_nest(nest)
    print(report.summary())
    print()

    print(figure2_original_isdg_41(n).describe())
    print()
    print(figure3_transformed_isdg_41(n).describe())
    print()

    verification = verify_transformation(nest, report)
    print(verification.describe())


if __name__ == "__main__":
    size = int(sys.argv[1]) if len(sys.argv) > 1 else 10
    main(size)
