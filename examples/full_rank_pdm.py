#!/usr/bin/env python
"""Section 4.2 walkthrough: a full-rank pseudo distance matrix.

Reproduces the paper's second worked example: a 2-deep loop with variable
dependence distances whose PDM is full rank with determinant 4, so the
partitioning transformation splits the iteration space into four independent
2-D sub-spaces (the paper's Figures 4 and 5).

Run with:  python examples/full_rank_pdm.py [N]
"""

import sys

from repro import analyze_nest, verify_transformation
from repro.experiments.figures import figure4_original_isdg_42, figure5_partitioned_isdg_42
from repro.workloads.paper_examples import example_4_2


def main(n: int = 10) -> None:
    nest = example_4_2(n)
    print("Original loop (reconstruction of Section 4.2):")
    print(nest)
    print()

    report = analyze_nest(nest)
    print(report.summary())
    print()

    print(figure4_original_isdg_42(n).describe())
    print()
    print(figure5_partitioned_isdg_42(n).describe())
    print()

    verification = verify_transformation(nest, report)
    print(verification.describe())


if __name__ == "__main__":
    size = int(sys.argv[1]) if len(sys.argv) > 1 else 10
    main(size)
