#!/usr/bin/env python
"""Parallel execution study: from structural parallelism to speedups.

Sweeps the loop size of both paper examples and a realistic kernel, reports
the exploited parallelism (doall loops x partitions), the ideal and simulated
speedups, and finally runs the thread-based executor to show wall-clock
behaviour (honestly documenting the CPython GIL limitation for pure-Python
loop bodies).

Run with:  python examples/parallel_execution.py
"""

from repro.experiments.backends import backend_comparison, backend_comparison_table
from repro.experiments.speedup import speedup_sweep, wallclock_measurement
from repro.utils.formatting import format_table
from repro.workloads.kernels import constant_partitioning_recurrence, strided_scatter
from repro.workloads.paper_examples import example_4_1, example_4_2


def main() -> None:
    headers = [
        "workload", "N", "iterations", "doall loops", "partitions",
        "chunks", "ideal speedup", "speedup p=4", "speedup p=16",
    ]
    rows = []
    for factory, name in (
        (example_4_1, "example-4.1"),
        (example_4_2, "example-4.2"),
        (lambda n: strided_scatter(n, stride=3), "strided-scatter"),
        (lambda n: constant_partitioning_recurrence(n, stride=2), "constant-partition"),
    ):
        for point in speedup_sweep(factory, sizes=(6, 10, 16), workload_name=name):
            rows.append(point.as_row())
    print("Structural parallelism and simulated speedups:")
    print(format_table(headers, rows))
    print()

    nest = example_4_2(12)
    timings = wallclock_measurement(nest, modes=("serial", "threads"))
    print(f"Wall-clock execution of {nest.name} (pure-Python bodies, GIL-limited):")
    for mode, seconds in timings.items():
        print(f"  {mode:>8s}: {seconds * 1000:8.1f} ms")
    print(
        "\nNote: wall-clock thread speedup is limited by the CPython GIL; the\n"
        "machine-independent parallelism numbers above (and the process-based\n"
        "executor) demonstrate the structural speedup the transformation enables."
    )
    print()

    print("Execution backends (single process, differential-checked):")
    print(backend_comparison_table(backend_comparison(n=32)))
    print(
        "\nThe vectorized backend converts the independent chunks of the\n"
        "schedule into NumPy gather/scatter rounds: its wall-clock speedup\n"
        "is the parallelism the paper's method exposes, GIL-free."
    )


if __name__ == "__main__":
    main()
