#!/usr/bin/env python
"""Quickstart: analyse, transform, generate code for and verify one loop nest.

Builds a 2-deep loop with variable dependence distances, computes its pseudo
distance matrix, applies the paper's parallelization method (Algorithm 1 +
partitioning), prints the generated code and verifies that the transformed
loop computes exactly the same result as the original.

Run with:  python examples/quickstart.py
"""

from repro import (
    TransformedLoopNest,
    build_schedule,
    emit_transformed_source,
    loop_nest,
    parallelize,
    simulate_schedule,
    verify_transformation,
)
from repro.codegen.schedule import schedule_statistics


def main() -> None:
    # A loop whose read access couples both indices: the dependence distances
    # are variable (they grow with i1), which defeats constant-distance
    # methods but is exactly the case the PDM method handles.
    nest = (
        loop_nest("quickstart")
        .loop("i1", -12, 12)
        .loop("i2", -12, 12)
        .statement("A[i1, i2] = A[-i1 - 2, 2*i1 + i2 + 2] + 1.0")
        .build()
    )
    print("Original loop:")
    print(nest)
    print()

    # 1. Analysis + transformation selection.
    report = parallelize(nest)
    print(report.summary())
    print()

    # 2. Code generation.
    transformed = TransformedLoopNest.from_report(report)
    print("Generated (transformed) code:")
    print(emit_transformed_source(transformed))

    # 3. Parallelism of the schedule.
    chunks = build_schedule(transformed)
    stats = schedule_statistics(chunks)
    sim = simulate_schedule(chunks, num_processors=8)
    print(f"Schedule: {stats['num_chunks']} independent chunks, "
          f"ideal speedup {stats['ideal_speedup']:.1f}, "
          f"simulated speedup on 8 processors {sim.speedup:.2f}")
    print()

    # 4. Dynamic verification: transformed execution == original execution.
    verification = verify_transformation(nest, report)
    print(verification.describe())


if __name__ == "__main__":
    main()
