#!/usr/bin/env python
"""Quickstart: one Session serves analysis, code generation, execution.

Builds a 2-deep loop with variable dependence distances, analyzes it
through a :class:`repro.Session`, prints the generated code, executes the
transformed schedule (verified against the interpreter reference) and
shows the serving-ready JSON form of the result.

Run with:  python examples/quickstart.py
"""

from repro import (
    Session,
    TransformedLoopNest,
    build_schedule,
    emit_transformed_source,
    loop_nest,
    simulate_schedule,
)
from repro.codegen.schedule import schedule_statistics


def main() -> None:
    # A loop whose read access couples both indices: the dependence distances
    # are variable (they grow with i1), which defeats constant-distance
    # methods but is exactly the case the PDM method handles.
    nest = (
        loop_nest("quickstart")
        .loop("i1", -12, 12)
        .loop("i2", -12, 12)
        .statement("A[i1, i2] = A[-i1 - 2, 2*i1 + i2 + 2] + 1.0")
        .build()
    )
    print("Original loop:")
    print(nest)
    print()

    with Session(backend="vectorized", verify="always") as session:
        # 1. Analysis + transformation selection.
        analysis = session.analyze(nest)
        print(analysis.summary())
        print()

        # 2. Code generation.
        transformed = TransformedLoopNest.from_report(analysis.report)
        print("Generated (transformed) code:")
        print(emit_transformed_source(transformed))

        # 3. Parallelism of the schedule.
        chunks = build_schedule(transformed)
        stats = schedule_statistics(chunks)
        sim = simulate_schedule(chunks, num_processors=8)
        print(f"Schedule: {stats['num_chunks']} independent chunks, "
              f"ideal speedup {stats['ideal_speedup']:.1f}, "
              f"simulated speedup on 8 processors {sim.speedup:.2f}")
        print()

        # 4. Execute with verification against the interpreter reference
        #    (the analysis above is a cache hit inside the same session).
        result = session.run(nest)
        print(f"Executed {result.iterations} iterations in {result.num_chunks} chunks "
              f"(backend {result.backend}), verified: {result.verified}")
        print()
        print("Serving-ready result payload:")
        print(result.to_json(indent=2)[:400] + " ...")


if __name__ == "__main__":
    main()
